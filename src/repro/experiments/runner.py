"""Integrated NVMe-oF testbed: network + fabric + drivers + SSDs + SRC.

Builds the paper's evaluation shape (§IV-A/IV-D): N initiators and M
targets on a switched fabric, each target running one or more simulated
SSDs behind an NVMe driver, DCQCN as the network congestion control, and
optionally the SRC controller adjusting SSQ weights from DCQCN rate
notifications.

Congestion comes from the workload itself (in-cast of read data toward
initiators) and, when configured, from a background traffic episode
aimed at an initiator — the knob used to reproduce the Fig. 7
congestion-then-relief timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.experiments.metrics import ThroughputSeries, trim_series

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.core.controller import BlockRateController, SRCController
    from repro.core.tpm import ThroughputPredictionModel
    from repro.nvme.block_sched import BlockLayerThrottle
from repro.fabric.initiator import Initiator, RetryPolicy
from repro.fabric.target import Target
from repro.faults import FaultInjector, FaultPlan, StuckIOWatchdog
from repro.net.nic import NICConfig
from repro.net.switch import SwitchConfig
from repro.net.topology import Network, build_star
from repro.nvme.driver import DefaultNvmeDriver
from repro.nvme.ssq import SSQDriver
from repro.sim.engine import Simulator
from repro.sim.units import MS, US, gbps_to_bytes_per_ns
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSD
from repro.workloads.traces import Trace


@dataclass(frozen=True)
class BackgroundTraffic:
    """An in-cast episode toward an initiator (congestion inducer).

    ``n_hosts`` senders each offer ``rate_gbps`` at the victim's downlink
    during the window.  Because DCQCN converges toward per-flow fairness,
    more hosts squeeze the target→initiator read flows harder — the same
    mechanism that congests inbound flows in the paper's full Clos runs.
    """

    start_ns: int
    end_ns: int
    rate_gbps: float
    n_hosts: int = 1
    message_bytes: int = 64 * 1024
    victim_index: int = 0  # which initiator's downlink to congest

    def __post_init__(self) -> None:
        if self.end_ns <= self.start_ns:
            raise ValueError("background episode must have positive duration")
        if self.rate_gbps <= 0:
            raise ValueError("background rate must be positive")
        if self.n_hosts < 1:
            raise ValueError("need at least one background host")


@dataclass(frozen=True)
class TestbedConfig:
    """Everything needed to assemble one run."""

    __test__ = False  # not a pytest test class despite the name

    n_initiators: int = 1
    n_targets: int = 2
    ssds_per_target: int = 1
    ssd_config: SSDConfig | None = None
    #: "default" (FIFO), "ssq" (§III-A separate queues), or "block"
    #: (§V block-layer throttle above a FIFO driver).
    driver: str = "ssq"
    src_enabled: bool = False
    link_rate_gbps: float = 40.0
    link_delay_ns: int = US
    nic_config: NICConfig | None = None
    switch_config: SwitchConfig | None = None
    background: BackgroundTraffic | None = None
    src_window_ns: int = 10 * MS
    src_min_interval_ns: int = 1 * MS
    #: Fault schedule armed against the assembled testbed.  SSD specs
    #: address backends as ``"<target>/ssd<k>"`` (e.g. ``"tgt0/ssd1"``).
    faults: FaultPlan | None = None
    #: NVMe-oF command timeout + bounded retry at every initiator.
    retry_policy: RetryPolicy | None = None
    #: Install a stuck-I/O watchdog: a run that goes quiescent with
    #: commands still in flight raises ``StuckIOError`` instead of
    #: returning quietly-wrong measurements.
    watchdog: bool = False

    def __post_init__(self) -> None:
        if self.n_initiators < 1 or self.n_targets < 1 or self.ssds_per_target < 1:
            raise ValueError("node counts must be >= 1")
        if self.driver not in ("ssq", "default", "block"):
            raise ValueError(f"unknown driver {self.driver!r}")
        if self.src_enabled and self.driver == "default":
            raise ValueError("SRC requires the SSQ or block-layer driver")


@dataclass
class RunMeasurement:
    """Picklable measurement subset of a :class:`RunResult`.

    Sweep workers return this instead of the full result: a finished
    ``RunResult`` drags the live object graph (simulator queue, NICs,
    SSDs) across the process boundary for no benefit — workers report
    measurements, not worlds.  (Live graphs *can* now be pickled via
    :mod:`repro.sim.checkpoint`, but that is for state snapshots, not
    per-cell result plumbing.)
    """

    duration_ns: int
    read_series: ThroughputSeries
    write_series: ThroughputSeries
    n_pauses: int
    sim_events: int
    bin_ns: int = MS

    @property
    def aggregated_series(self) -> ThroughputSeries:
        return self.read_series + self.write_series

    def trimmed_read_gbps(self, fraction: float = 0.1) -> float:
        return trim_series(self.read_series, fraction).mean()

    def trimmed_write_gbps(self, fraction: float = 0.1) -> float:
        return trim_series(self.write_series, fraction).mean()

    def trimmed_aggregated_gbps(self, fraction: float = 0.1) -> float:
        return trim_series(self.aggregated_series, fraction).mean()


@dataclass
class RunResult:
    """Measurements from one testbed run."""

    duration_ns: int
    read_series: ThroughputSeries
    write_series: ThroughputSeries
    pause_times_ns: list[int]
    initiators: list[Initiator]
    targets: list[Target]
    controllers: list[SRCController | BlockRateController]
    network: Network
    sim: Simulator
    bin_ns: int = MS
    injector: FaultInjector | None = None
    watchdog: StuckIOWatchdog | None = None

    @property
    def aggregated_series(self) -> ThroughputSeries:
        return self.read_series + self.write_series

    @property
    def sim_events(self) -> int:
        return self.sim.events_dispatched

    def measurement(self) -> RunMeasurement:
        """Strip to the picklable measurements (for sweep workers)."""
        return RunMeasurement(
            duration_ns=self.duration_ns,
            read_series=self.read_series,
            write_series=self.write_series,
            n_pauses=len(self.pause_times_ns),
            sim_events=self.sim.events_dispatched,
            bin_ns=self.bin_ns,
        )

    def trimmed_read_gbps(self, fraction: float = 0.1) -> float:
        return trim_series(self.read_series, fraction).mean()

    def trimmed_write_gbps(self, fraction: float = 0.1) -> float:
        return trim_series(self.write_series, fraction).mean()

    def trimmed_aggregated_gbps(self, fraction: float = 0.1) -> float:
        return trim_series(self.aggregated_series, fraction).mean()

    def pause_counts_per_ms(self) -> tuple[np.ndarray, np.ndarray]:
        """(bin starts ns, CNPs per ms) over the run."""
        n_bins = max(1, -(-self.duration_ns // MS))
        counts = np.zeros(n_bins)
        for t in self.pause_times_ns:
            if 0 <= t < self.duration_ns:
                counts[t // MS] += 1
        return np.arange(n_bins, dtype=np.int64) * MS, counts


class _BackgroundFeeder:
    """Self-rescheduling background-traffic source (slotted so a mid-
    episode checkpoint can pickle the pending feed event)."""

    __slots__ = ("sim", "nic", "victim", "message_bytes", "end_ns", "gap_ns")

    def __init__(self, sim, nic, victim, message_bytes, end_ns, gap_ns):
        self.sim = sim
        self.nic = nic
        self.victim = victim
        self.message_bytes = message_bytes
        self.end_ns = end_ns
        self.gap_ns = gap_ns

    def __call__(self) -> None:
        if self.sim.now >= self.end_ns:
            return
        self.nic.send_message(self.victim, self.message_bytes)
        self.sim.schedule(self.gap_ns, self)


def _make_driver(
    config: TestbedConfig, sim: Simulator
) -> "SSQDriver | DefaultNvmeDriver | BlockLayerThrottle":
    if config.driver == "ssq":
        return SSQDriver(read_weight=1, write_weight=1)
    if config.driver == "block":
        from repro.nvme.block_sched import BlockLayerThrottle

        return BlockLayerThrottle(sim, DefaultNvmeDriver())
    return DefaultNvmeDriver()


def run_testbed(
    trace: Trace,
    config: TestbedConfig,
    *,
    tpm: ThroughputPredictionModel | None = None,
    duration_ns: int | None = None,
    drain_margin_ns: int = 20 * MS,
    bin_ns: int = MS,
    drain_outstanding_ns: int = 0,
) -> RunResult:
    """Assemble the testbed, replay ``trace``, and collect measurements.

    Requests are assigned round-robin to initiators and, independently,
    round-robin to targets (every initiator talks to every target —
    the in-cast pattern).

    ``drain_outstanding_ns`` grants a fault run extra simulated time
    past the nominal end while any initiator still has commands in
    flight — retry/retransmit recovery needs it, and a bounded grace
    (instead of run-to-empty) keeps a genuinely wedged run terminating
    so the watchdog can describe it.
    """
    if len(trace) == 0:
        raise ValueError("cannot run an empty trace")
    if config.src_enabled and config.driver == "ssq" and tpm is None:
        raise ValueError("SRC with the SSQ driver needs a fitted TPM")

    sim = Simulator()
    init_names = [f"init{i}" for i in range(config.n_initiators)]
    tgt_names = [f"tgt{j}" for j in range(config.n_targets)]
    bg_names = (
        [f"bg{i}" for i in range(config.background.n_hosts)] if config.background else []
    )
    net = build_star(
        sim,
        init_names + tgt_names + bg_names,
        rate_gbps=config.link_rate_gbps,
        delay_ns=config.link_delay_ns,
        nic_config=config.nic_config,
        switch_config=config.switch_config,
    )

    ssd_config = config.ssd_config
    if ssd_config is None:
        from repro.ssd.config import SSD_A

        ssd_config = SSD_A

    targets: list[Target] = []
    controllers: list[SRCController | BlockRateController] = []
    for name in tgt_names:
        ssds = [SSD(sim, ssd_config) for _ in range(config.ssds_per_target)]
        drivers = [_make_driver(config, sim) for _ in range(config.ssds_per_target)]
        target = Target(sim, net.hosts[name], ssds, drivers)
        targets.append(target)
        if config.src_enabled and config.driver == "ssq":
            from repro.core.controller import SRCController

            assert tpm is not None  # validated on entry
            src_controller = SRCController(
                tpm,
                window_ns=config.src_window_ns,
                min_adjust_interval_ns=config.src_min_interval_ns,
                line_rate_gbps=config.link_rate_gbps,
            )
            src_controller.attach(target, sim)
            controllers.append(src_controller)
        elif config.src_enabled and config.driver == "block":
            from repro.core.controller import BlockRateController

            block_controller = BlockRateController(
                min_adjust_interval_ns=config.src_min_interval_ns,
                line_rate_gbps=config.link_rate_gbps,
            )
            block_controller.attach(target, sim)
            controllers.append(block_controller)

    initiators = [
        Initiator(sim, net.hosts[name], retry_policy=config.retry_policy)
        for name in init_names
    ]

    injector: FaultInjector | None = None
    if config.faults is not None:
        injector = FaultInjector(sim, config.faults).attach_network(net)
        for tgt_name, target in zip(tgt_names, targets):
            for k, ssd in enumerate(target.ssds):
                injector.attach_ssd(f"{tgt_name}/ssd{k}", ssd.backend)
        injector.arm()

    watchdog: StuckIOWatchdog | None = None
    if config.watchdog:
        watchdog = StuckIOWatchdog().install(sim)
        for initiator in initiators:
            watchdog.track_initiator(initiator)

    # Round-robin request assignment.
    for idx, req in enumerate(trace):
        initiator = initiators[idx % len(initiators)]
        req.target = tgt_names[idx % len(tgt_names)]
        req.initiator = initiator.name
        sim.schedule_at(req.arrival_ns, initiator.issue, req)

    # Background congestion episode.
    if config.background:
        bg = config.background
        victim = init_names[bg.victim_index % len(init_names)]
        gap_ns = max(1, int(bg.message_bytes / gbps_to_bytes_per_ns(bg.rate_gbps)))

        for name in bg_names:
            feeder = _BackgroundFeeder(
                sim, net.hosts[name], victim, bg.message_bytes, bg.end_ns, gap_ns
            )
            sim.schedule_at(bg.start_ns, feeder)

    end = duration_ns if duration_ns is not None else trace[-1].arrival_ns + drain_margin_ns
    sim.run(until=end)
    if drain_outstanding_ns > 0:
        cap = end + drain_outstanding_ns
        while sim.now < cap and any(i.outstanding() for i in initiators):
            sim.run(until=min(cap, sim.now + MS))
        end = max(end, sim.now)

    read_events = [ev for ini in initiators for ev in ini.read_deliveries]
    write_events = [ev for tgt in targets for ev in tgt.write_completions]
    pause_times = sorted(t for tgt in targets for t in tgt.nic.cnp_log)

    return RunResult(
        duration_ns=end,
        read_series=ThroughputSeries.from_events(read_events, bin_ns, end),
        write_series=ThroughputSeries.from_events(write_events, bin_ns, end),
        pause_times_ns=pause_times,
        initiators=initiators,
        targets=targets,
        controllers=controllers,
        network=net,
        sim=sim,
        bin_ns=bin_ns,
        injector=injector,
        watchdog=watchdog,
    )
