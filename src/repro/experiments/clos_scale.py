"""Clos-at-scale cell: the dual-fidelity engine's headline scenario.

The paper's evaluation fabric (4-pod Clos, 256 hosts) with hundreds of
MMPP-class background tenants is far beyond what per-packet simulation
sustains — §IV-A's all-packet runs cap out at a handful of tenants.
This cell runs that fabric the dual-fidelity way:

* **background**: ``n_tenants`` tenant flows between fluid-tagged hosts
  are handed to a :class:`~repro.net.fluid.FluidDomain` — max-min fair
  shares, mean-field DCQCN, and capacity coupling into the packet
  domain, at a few events per control interval *total*;
* **foreground**: ``n_foreground_flows`` packet-level flows between
  packet-fidelity hosts keep full per-packet fidelity (ECN draws, CNPs,
  DCQCN timers), with the burst-batched pump
  (``NICConfig.burst_segments``) coalescing their serialization events.

The result records the event-count reduction against the *all-packet
projection*: dispatched events plus what serving the fluid bytes as MTU
packets would have cost (:meth:`FluidDomain.projected_packet_events`).
That ratio is the cell's acceptance metric (>= 10x at defaults) and is
what ``benchmarks/smoke_cell.py --dual-fidelity`` guards.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

from repro.net.fluid import FluidConfig, FluidDomain
from repro.net.nic import NIC, NICConfig
from repro.net.topology import Network, build_clos
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng
from repro.sim.units import MS, US

__all__ = ["ClosScaleConfig", "ClosScaleResult", "run_clos_scale_cell"]


@dataclass(frozen=True)
class ClosScaleConfig:
    """Scenario knobs (defaults = the acceptance-scale cell)."""

    # Fabric (build_clos defaults: 4 pods x 2 leaves x 4 ToRs x 16 hosts).
    n_pods: int = 4
    leaves_per_pod: int = 2
    tors_per_pod: int = 4
    hosts_per_tor: int = 16
    #: Hosts per ToR handed to the fluid domain (the last that many).
    fluid_hosts_per_tor: int = 8
    # Background (fluid) tenants.
    n_tenants: int = 200
    #: Nominal per-tenant demand; each tenant draws a seeded multiplier
    #: in [0.5, 1.5) so the tenant population is heterogeneous.
    tenant_demand_gbps: float = 3.0
    # Foreground (packet-level) flows.
    n_foreground_flows: int = 8
    foreground_message_bytes: int = 64 * 1024
    foreground_interarrival_ns: int = 150 * US
    #: Burst-batched pump coalescing factor (1 = classic per-packet).
    burst_segments: int = 8
    # Run control.
    duration_ns: int = 100 * MS
    fluid_update_interval_ns: int = 100 * US
    seed: int = 7
    #: ``False`` / ``True`` / ``"stride:K"``, as everywhere else.
    sanitize: bool | str = False

    def __post_init__(self) -> None:
        if self.n_tenants < 0 or self.n_foreground_flows < 1:
            raise ValueError("need >= 0 tenants and >= 1 foreground flow")
        if self.fluid_hosts_per_tor >= self.hosts_per_tor:
            raise ValueError("need at least one packet-fidelity host per ToR")
        if self.duration_ns <= 0:
            raise ValueError("duration must be positive")


@dataclass(frozen=True)
class ClosScaleResult:
    """Outcome + scale accounting of one Clos cell run."""

    events_dispatched: int
    wall_s: float
    sim_end_ns: int
    fluid_updates: int
    fluid_flows: int
    fluid_bytes_served: float
    foreground_bytes_received: int
    foreground_messages_delivered: int
    #: Dispatched events plus the all-packet cost of the fluid bytes.
    projected_packet_events: int

    @property
    def events_per_sec(self) -> float:
        return self.events_dispatched / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def event_reduction(self) -> float:
        """All-packet projection over actually dispatched events."""
        if self.events_dispatched == 0:
            return 0.0
        return self.projected_packet_events / self.events_dispatched

    def as_dict(self) -> dict:
        return {
            "events_dispatched": self.events_dispatched,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec),
            "sim_end_ns": self.sim_end_ns,
            "fluid_updates": self.fluid_updates,
            "fluid_flows": self.fluid_flows,
            "fluid_bytes_served": round(self.fluid_bytes_served),
            "foreground_bytes_received": self.foreground_bytes_received,
            "foreground_messages_delivered": self.foreground_messages_delivered,
            "projected_packet_events": self.projected_packet_events,
            "event_reduction": round(self.event_reduction, 2),
        }


class _ForegroundSource:
    """Feeds one packet-level flow a message every fixed interval."""

    __slots__ = ("sim", "nic", "dst", "message_bytes", "gap_ns", "end_ns", "_send_cb")

    def __init__(
        self,
        sim: Simulator,
        nic: NIC,
        dst: str,
        message_bytes: int,
        gap_ns: int,
        end_ns: int,
    ) -> None:
        self.sim = sim
        self.nic = nic
        self.dst = dst
        self.message_bytes = message_bytes
        self.gap_ns = gap_ns
        self.end_ns = end_ns
        self._send_cb = self.send

    def send(self) -> None:
        if self.sim.now >= self.end_ns:
            return
        self.nic.send_message(self.dst, self.message_bytes)
        self.sim.schedule_anon(self.gap_ns, self._send_cb)


def _pick_foreground_pairs(net: Network, config: ClosScaleConfig) -> list[tuple[str, str]]:
    """Cross-pod (src, dst) pairs over packet-fidelity hosts.

    Host ``h<pod>_<tor>_0`` is packet-fidelity by construction
    (``fluid_hosts_per_tor < hosts_per_tor`` tags only the tail), so
    pairing pod ``p`` with pod ``p+1`` at increasing ToR indices gives
    deterministic pairs whose paths cross the leaf mesh — the part of
    the fabric the fluid tenants congest.
    """
    pairs: list[tuple[str, str]] = []
    for i in range(config.n_foreground_flows):
        src_pod = i % config.n_pods
        dst_pod = (src_pod + 1) % config.n_pods
        tor = (i // config.n_pods) % config.tors_per_pod
        src = f"h{src_pod}_{tor}_0"
        dst = f"h{dst_pod}_{tor}_0"
        if src not in net.hosts or dst not in net.hosts:
            raise ValueError(
                f"foreground flow {i} needs hosts {src}/{dst}; "
                "fabric too small for n_foreground_flows"
            )
        pairs.append((src, dst))
    return pairs


def run_clos_scale_cell(config: ClosScaleConfig | None = None) -> ClosScaleResult:
    """Build, run, and account the dual-fidelity Clos cell."""
    config = config or ClosScaleConfig()
    sim = Simulator(sanitize=config.sanitize)
    nic_config = NICConfig(burst_segments=config.burst_segments)
    net = build_clos(
        sim,
        n_pods=config.n_pods,
        leaves_per_pod=config.leaves_per_pod,
        tors_per_pod=config.tors_per_pod,
        hosts_per_tor=config.hosts_per_tor,
        nic_config=nic_config,
        fluid_hosts_per_tor=config.fluid_hosts_per_tor,
    )
    domain = FluidDomain(
        sim,
        net,
        FluidConfig(update_interval_ns=config.fluid_update_interval_ns),
    )
    # Background tenants: seeded heterogeneous demands between fluid
    # hosts, destination offset by a stride coprime-ish with the host
    # count so paths spread over the leaf mesh.
    fluid_hosts = net.fluid_hosts()
    rng = make_rng(config.seed)
    n_fluid = len(fluid_hosts)
    if config.n_tenants > 0 and n_fluid < 2:
        raise ValueError("fluid tenants need >= 2 fluid-tagged hosts")
    for i in range(config.n_tenants):
        src = fluid_hosts[i % n_fluid]
        dst = fluid_hosts[(i + n_fluid // 2 + 1) % n_fluid]
        if dst == src:
            dst = fluid_hosts[(i + 1) % n_fluid]
        demand = config.tenant_demand_gbps * (0.5 + float(rng.random()))
        domain.add_flow(src, dst, demand)
    domain.start(until_ns=config.duration_ns)
    # Foreground packet-level flows.
    for src, dst in _pick_foreground_pairs(net, config):
        source = _ForegroundSource(
            sim,
            net.hosts[src],
            dst,
            config.foreground_message_bytes,
            config.foreground_interarrival_ns,
            config.duration_ns,
        )
        sim.schedule_anon(1, source._send_cb)
    t0 = _time.perf_counter()
    dispatched = sim.run(until=config.duration_ns + 500 * US)
    wall = _time.perf_counter() - t0
    fg_bytes = 0
    fg_messages = 0
    for nic in net.hosts.values():
        fg_bytes += nic.bytes_received
        fg_messages += nic.messages_delivered
    projected = dispatched + domain.projected_packet_events(nic_config.mtu_bytes)
    return ClosScaleResult(
        events_dispatched=dispatched,
        wall_s=wall,
        sim_end_ns=sim.now,
        fluid_updates=domain.updates,
        fluid_flows=len(domain.flows),
        fluid_bytes_served=domain.total_bytes_served(),
        foreground_bytes_received=fg_bytes,
        foreground_messages_delivered=fg_messages,
        projected_packet_events=projected,
    )
