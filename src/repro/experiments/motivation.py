"""Fig. 2: the motivating fluid model of congestion control options.

An analytic (fluid) model of the three scenarios the paper draws:

* (a) no congestion — the device serves R reads + W writes per unit and
  the network carries everything;
* (b) DCQCN — the network caps the inbound (read) direction at a
  fraction of demand; the device keeps processing at full rate, so the
  delivered read rate is clipped and the surplus is wasted;
* (c) SRC — the device re-weights so the read *processing* rate matches
  the network cap and the freed capacity serves writes.

The defaults replicate the numbers in the figure (6 reads + 3 writes
per unit, network rate 6, a 50% cut): DCQCN delivers 6, SRC restores 9.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MotivationScenario:
    """Fluid parameters of the Fig. 2 demo (units: requests per tick)."""

    ssd_read_rate: float = 6.0
    ssd_write_rate: float = 3.0
    network_rate: float = 6.0
    congestion_cut: float = 0.5  # fraction of network rate surviving a cut

    def __post_init__(self) -> None:
        if min(self.ssd_read_rate, self.ssd_write_rate, self.network_rate) < 0:
            raise ValueError("rates must be non-negative")
        if not 0.0 < self.congestion_cut <= 1.0:
            raise ValueError("cut must be in (0, 1]")


@dataclass(frozen=True)
class MotivationOutcome:
    """Delivered throughput per scenario (reads at initiator + writes at target)."""

    read_delivered: float
    write_delivered: float
    read_processed: float  # device-side processing rate (≥ delivered)

    @property
    def aggregated(self) -> float:
        return self.read_delivered + self.write_delivered

    @property
    def wasted_read(self) -> float:
        """Device read work that never reaches the initiator."""
        return self.read_processed - self.read_delivered


def no_congestion(s: MotivationScenario) -> MotivationOutcome:
    """Fig. 2-a: the network carries the device's full output."""
    read = min(s.ssd_read_rate, s.network_rate)
    return MotivationOutcome(
        read_delivered=read, write_delivered=s.ssd_write_rate, read_processed=s.ssd_read_rate
    )


def dcqcn_only(s: MotivationScenario) -> MotivationOutcome:
    """Fig. 2-b: the TXQ clips reads; the device keeps processing."""
    capped = s.network_rate * s.congestion_cut
    read = min(s.ssd_read_rate, capped)
    return MotivationOutcome(
        read_delivered=read, write_delivered=s.ssd_write_rate, read_processed=s.ssd_read_rate
    )


def dcqcn_src(s: MotivationScenario) -> MotivationOutcome:
    """Fig. 2-c: SRC lowers read processing to the cap, writes absorb the slack.

    The device's total service capacity (read + write rate) is conserved;
    the read share is reduced to the network cap and the remainder goes
    to writes.
    """
    capped = s.network_rate * s.congestion_cut
    read = min(s.ssd_read_rate, capped)
    freed = s.ssd_read_rate - read
    return MotivationOutcome(
        read_delivered=read,
        write_delivered=s.ssd_write_rate + freed,
        read_processed=read,
    )
