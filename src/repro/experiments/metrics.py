"""Throughput series and the paper's measurement conventions.

§IV-B: aggregated throughput = read throughput received at Initiators +
write throughput obtained at Targets; the first and last 10% of the
timeline are trimmed to skip warm-up and wrap-up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.units import GBPS


@dataclass
class ThroughputSeries:
    """Binned throughput of one direction.

    ``times_ns`` holds bin start times; ``gbps`` the average rate within
    each bin.
    """

    times_ns: np.ndarray
    gbps: np.ndarray

    def __post_init__(self) -> None:
        if self.times_ns.shape != self.gbps.shape:
            raise ValueError("times and values must align")

    @classmethod
    def from_events(
        cls, events: list[tuple[int, int]], bin_ns: int, end_ns: int
    ) -> "ThroughputSeries":
        """Bin (time_ns, nbytes) completion events into a rate series.

        The measured span is ``[0, end_ns]`` inclusive: a completion at
        exactly ``end_ns`` (common when the run stops at the last
        arrival) lands in the final bin rather than being dropped.  When
        ``end_ns`` is not a bin multiple, the final *partial* bin is
        normalised by its true width so its rate is not under-reported.
        """
        if bin_ns <= 0:
            raise ValueError(f"bin width must be positive, got {bin_ns}")
        if end_ns <= 0:
            raise ValueError(f"end time must be positive, got {end_ns}")
        n_bins = -(-end_ns // bin_ns)
        acc = np.zeros(n_bins)
        for t, nbytes in events:
            if 0 <= t <= end_ns:
                acc[min(t // bin_ns, n_bins - 1)] += nbytes
        times = np.arange(n_bins, dtype=np.int64) * bin_ns
        widths = np.full(n_bins, bin_ns, dtype=np.int64)
        widths[-1] = end_ns - (n_bins - 1) * bin_ns
        return cls(times_ns=times, gbps=acc / widths / GBPS)

    def mean(self) -> float:
        return float(self.gbps.mean()) if self.gbps.size else 0.0

    def __add__(self, other: "ThroughputSeries") -> "ThroughputSeries":
        if not np.array_equal(self.times_ns, other.times_ns):
            raise ValueError("cannot add series with different binning")
        return ThroughputSeries(self.times_ns, self.gbps + other.gbps)


def trim_series(series: ThroughputSeries, fraction: float = 0.1) -> ThroughputSeries:
    """Drop the first and last ``fraction`` of bins (warm-up / wrap-up)."""
    if not 0.0 <= fraction < 0.5:
        raise ValueError(f"trim fraction must be in [0, 0.5), got {fraction}")
    n = series.gbps.size
    cut = int(n * fraction)
    if n - 2 * cut <= 0:
        return series
    sl = slice(cut, n - cut)
    return ThroughputSeries(series.times_ns[sl], series.gbps[sl])


def trimmed_mean_gbps(events: list[tuple[int, int]], end_ns: int, *, bin_ns: int, fraction: float = 0.1) -> float:
    """Trimmed-average throughput of a completion event stream."""
    return trim_series(ThroughputSeries.from_events(events, bin_ns, end_ns), fraction).mean()
