"""Fig. 9: dynamic throughput adjustment under synthetic congestion events.

A device-level run on one SSD: a saturating workload replays through an
SSQ driver while a schedule of pause/retrieval events (each carrying a
demanded data sending rate) fires.  At each event SRC profiles the
trailing window, runs ``PredictWeightRatio``, and applies the weights.
The read-throughput time series shows the convergence; the recorded
per-event convergence delays back the §IV-E "average control delay
≈ 7.3 ms" measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.controller import predict_weight_ratio
from repro.core.events import CongestionEvent
from repro.core.monitor import WorkloadMonitor
from repro.core.tpm import ThroughputPredictionModel
from repro.experiments.metrics import ThroughputSeries
from repro.nvme.ssq import SSQDriver
from repro.sim.engine import Simulator
from repro.sim.units import MS
from repro.ssd.config import SSDConfig
from repro.ssd.device import SSD
from repro.workloads.traces import Trace


class _MonitoredFeed:
    """Arrival-time submission that also feeds the workload monitor
    (slotted module class instead of a per-request closure so pending
    submissions stay checkpoint-picklable)."""

    __slots__ = ("monitor", "driver", "sim")

    def __init__(self, monitor: WorkloadMonitor, driver: SSQDriver, sim: Simulator):
        self.monitor = monitor
        self.driver = driver
        self.sim = sim

    def __call__(self, req) -> None:
        self.monitor.observe(req, self.sim.now)
        self.driver.submit(req, now_ns=self.sim.now)


class _SRCAdjuster:
    """One scheduled SRC weight adjustment (slotted module class instead
    of a per-event closure so pending adjustments stay
    checkpoint-picklable)."""

    __slots__ = ("sim", "monitor", "driver", "tpm", "tau", "outcomes", "event")

    def __init__(
        self,
        sim: Simulator,
        monitor: WorkloadMonitor,
        driver: SSQDriver,
        tpm: ThroughputPredictionModel,
        tau: float,
        outcomes: list["AdjustmentOutcome"],
        event: CongestionEvent,
    ) -> None:
        self.sim = sim
        self.monitor = monitor
        self.driver = driver
        self.tpm = tpm
        self.tau = tau
        self.outcomes = outcomes
        self.event = event

    def apply(self) -> None:
        if self.monitor.in_window(self.sim.now) >= 2:
            features = self.monitor.features(self.sim.now)
            w = predict_weight_ratio(
                self.tpm, self.event.demanded_rate_gbps, features, tau=self.tau
            )
        else:
            w = 1
        self.driver.set_weights(1, w, now_ns=self.sim.now)
        self.outcomes.append(
            AdjustmentOutcome(
                event=self.event, weight_ratio=w, convergence_delay_ns=-1
            )
        )


@dataclass
class AdjustmentOutcome:
    """What happened at one congestion event."""

    event: CongestionEvent
    weight_ratio: int
    convergence_delay_ns: int  # -1 if never converged before the next event


@dataclass
class DynamicControlResult:
    read_series: ThroughputSeries
    write_series: ThroughputSeries
    outcomes: list[AdjustmentOutcome]

    def mean_control_delay_ns(self) -> float:
        """Average convergence delay over events that converged."""
        delays = [o.convergence_delay_ns for o in self.outcomes if o.convergence_delay_ns >= 0]
        return float(np.mean(delays)) if delays else float("nan")


def run_dynamic_control(
    trace: Trace,
    config: SSDConfig,
    tpm: ThroughputPredictionModel,
    events: list[CongestionEvent],
    *,
    window_ns: int = 10 * MS,
    tau: float = 0.1,
    bin_ns: int = MS,
    convergence_band: float = 0.25,
    duration_ns: int | None = None,
) -> DynamicControlResult:
    """Replay ``trace`` on one SSD while applying ``events`` through SRC.

    ``convergence_band``: an adjustment counts as converged once the
    binned read throughput stays within ±band of the demanded rate (or
    has crossed it from the starting side).
    """
    if not events:
        raise ValueError("need at least one congestion event")
    if sorted(e.time_ns for e in events) != [e.time_ns for e in events]:
        raise ValueError("events must be time-ordered")

    sim = Simulator()
    ssd = SSD(sim, config)
    driver = SSQDriver(1, 1)
    driver.connect(ssd)
    ssd.set_cq_listener(ssd.auto_drain)

    monitor = WorkloadMonitor(window_ns)

    feed = _MonitoredFeed(monitor, driver, sim)
    for req in trace:
        sim.schedule_at(req.arrival_ns, feed, req)

    outcomes: list[AdjustmentOutcome] = []

    for event in events:
        adjuster = _SRCAdjuster(sim, monitor, driver, tpm, tau, outcomes, event)
        sim.schedule_at(event.time_ns, adjuster.apply)

    end = duration_ns if duration_ns is not None else trace[-1].arrival_ns
    sim.run(until=end)

    events_read = [
        (t, r.size_bytes) for t, r in ssd.controller.completion_log if r.is_read
    ]
    events_write = [
        (t, r.size_bytes) for t, r in ssd.controller.completion_log if not r.is_read
    ]
    read_series = ThroughputSeries.from_events(events_read, bin_ns, end)
    write_series = ThroughputSeries.from_events(events_write, bin_ns, end)

    _fill_convergence_delays(read_series, outcomes, end, bin_ns, convergence_band)
    return DynamicControlResult(
        read_series=read_series, write_series=write_series, outcomes=outcomes
    )


def _fill_convergence_delays(
    read_series: ThroughputSeries,
    outcomes: list[AdjustmentOutcome],
    end_ns: int,
    bin_ns: int,
    band: float,
) -> None:
    for i, outcome in enumerate(outcomes):
        t0 = outcome.event.time_ns
        t1 = outcomes[i + 1].event.time_ns if i + 1 < len(outcomes) else end_ns
        demanded = outcome.event.demanded_rate_gbps
        start_bin = int(t0 // bin_ns)
        end_bin = min(int(t1 // bin_ns), read_series.gbps.size)
        if start_bin >= read_series.gbps.size or start_bin >= end_bin:
            continue
        start_rate = read_series.gbps[start_bin]
        above = start_rate > demanded
        for b in range(start_bin, end_bin):
            rate = read_series.gbps[b]
            within = abs(rate - demanded) <= band * max(demanded, 1e-9)
            crossed = (rate <= demanded) if above else (rate >= demanded)
            if within or crossed:
                outcome.convergence_delay_ns = max(0, b * bin_ns - t0)
                break
