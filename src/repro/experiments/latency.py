"""Request-latency statistics.

The paper evaluates throughput, but §IV-E's control-delay argument
("a typical latency of network flows with tens of KB data is tens of
milliseconds") is about latency — and any adopter of this library will
want latency percentiles next to the throughput series.  This module
summarises per-direction end-to-end and device-service latencies from
completed :class:`~repro.workloads.request.IORequest` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.workloads.request import IORequest


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of one latency population (ns)."""

    count: int
    mean_ns: float
    p50_ns: float
    p95_ns: float
    p99_ns: float
    max_ns: float

    @classmethod
    def of(cls, samples_ns: np.ndarray) -> "LatencySummary":
        x = np.asarray(samples_ns, dtype=np.float64)
        if x.size == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=int(x.size),
            mean_ns=float(x.mean()),
            p50_ns=float(np.percentile(x, 50)),
            p95_ns=float(np.percentile(x, 95)),
            p99_ns=float(np.percentile(x, 99)),
            max_ns=float(x.max()),
        )


@dataclass(frozen=True)
class LatencyReport:
    """End-to-end and device-service latency, split by direction."""

    read_total: LatencySummary
    write_total: LatencySummary
    read_device: LatencySummary
    write_device: LatencySummary


def _completed(requests: Iterable[IORequest]) -> list[IORequest]:
    return [r for r in requests if r.complete_ns >= 0]


def latency_report(requests: Iterable[IORequest]) -> LatencyReport:
    """Summarise latencies of the *completed* requests in ``requests``.

    End-to-end latency spans arrival → completion at the initiator;
    device latency spans command fetch → device completion (only for
    requests that carry both stamps).
    """
    done = _completed(requests)
    reads = [r for r in done if r.is_read]
    writes = [r for r in done if not r.is_read]

    def totals(rs):
        return np.array([r.complete_ns - r.arrival_ns for r in rs], dtype=np.float64)

    def device(rs):
        return np.array(
            [
                r.device_done_ns - r.fetch_ns
                for r in rs
                if r.device_done_ns >= 0 and r.fetch_ns >= 0
            ],
            dtype=np.float64,
        )

    return LatencyReport(
        read_total=LatencySummary.of(totals(reads)),
        write_total=LatencySummary.of(totals(writes)),
        read_device=LatencySummary.of(device(reads)),
        write_device=LatencySummary.of(device(writes)),
    )
