"""Fig. 5: I/O throughput across weight ratios under different workloads.

A grid of micro workloads (rows: mean inter-arrival, columns: mean
request size, matching the paper's 10–25 µs × 10–40 KB panels) is
replayed at each weight ratio; each cell yields read/write throughput
curves whose shapes the paper's observations describe:

* equality at w = 1,
* read ↓ / write ↑ with w under moderate/heavy load,
* flat curves (WRR → RR) under light load.

Every (inter-arrival, size, weight) point is an independent simulation,
so the grid fans out through :mod:`repro.parallel`; ``workers=N`` is
bit-identical to ``workers=1`` because each point regenerates its trace
from the same derived seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.experiments.replay import replay_on_device
from repro.nvme.ssq import SSQDriver
from repro.parallel import SweepReport, run_cells
from repro.ssd.config import SSDConfig
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace


@dataclass
class WeightSweepCell:
    """One panel of the Fig. 5 grid."""

    interarrival_ns: float
    size_bytes: float
    weight_ratios: np.ndarray
    read_gbps: np.ndarray
    write_gbps: np.ndarray

    def read_monotone_nonincreasing(self, tolerance: float = 0.15) -> bool:
        """True when read throughput never rises by more than tolerance."""
        r = self.read_gbps
        scale = max(float(r.max()), 1e-9)
        return bool(np.all(np.diff(r) <= tolerance * scale))

    def control_effect(self) -> float:
        """Relative read-throughput reduction from w=1 to the max ratio."""
        base = float(self.read_gbps[0])
        if base <= 0:
            return 0.0
        return (base - float(self.read_gbps[-1])) / base


def _sweep_point(
    config: SSDConfig,
    interarrival_ns: float,
    size_bytes: float,
    weight_ratio: int,
    duration_ns: int,
    min_requests: int,
    seed: int,
    measure_start_fraction: float,
) -> dict:
    """One (inter-arrival, size, weight) grid point — a sweep worker cell.

    The trace seed depends only on the panel coordinates, so every
    weight ratio of a panel replays the identical trace and results do
    not depend on whether points run serially or in a pool.
    """
    wl = MicroWorkloadConfig(
        mean_interarrival_ns=interarrival_ns, mean_size_bytes=size_bytes
    )
    n_requests = max(min_requests, int(duration_ns / interarrival_ns))
    trace = generate_micro_trace(
        wl, n_reads=n_requests, n_writes=n_requests,
        # Deliberate unit mixing: hashing ns and bytes into a seed.
        seed=seed + int(interarrival_ns) % 997 + int(size_bytes) % 991,  # simlint: ignore[SIM101]
    )
    result = replay_on_device(
        trace,
        config,
        SSQDriver(1, weight_ratio),
        drain=False,
        measure_start_fraction=measure_start_fraction,
    )
    return {
        "read": result.read_tput_gbps,
        "write": result.write_tput_gbps,
        "sim_events": result.sim_events,
    }


def run_weight_sweep_with_report(
    config: SSDConfig,
    *,
    interarrivals_ns: Sequence[float] = (10_000, 17_500, 25_000),
    sizes_bytes: Sequence[float] = (10 * 1024, 25 * 1024, 40 * 1024),
    weight_ratios: Sequence[int] = (1, 2, 4, 8, 16),
    duration_ns: int = 60_000_000,
    min_requests: int = 300,
    seed: int = 42,
    measure_start_fraction: float = 0.4,
    workers: int | None = 1,
    timeout_s: float | None = None,
    retries: int = 1,
) -> tuple[list[WeightSweepCell], SweepReport]:
    """Run the Fig. 5 grid; returns the panels plus the sweep report.

    Each cell's trace spans ``duration_ns`` so deeply saturated devices
    (whose command latencies reach several ms) are measured at steady
    state rather than during the ramp.  ``workers`` fans the grid's
    independent points across processes (``None`` = all cores) with
    bit-identical results to the serial run.
    """
    if any(w < 1 for w in weight_ratios):
        raise ValueError("weight ratios must be >= 1")
    if duration_ns <= 0:
        raise ValueError("duration must be positive")
    points = [
        (config, inter, size, w, duration_ns, min_requests, seed,
         measure_start_fraction)
        for inter in interarrivals_ns
        for size in sizes_bytes
        for w in weight_ratios
    ]
    report = run_cells(
        _sweep_point, points, workers=workers, timeout_s=timeout_s, retries=retries
    )

    cells: list[WeightSweepCell] = []
    n_w = len(weight_ratios)
    per_panel = [
        report.results[i : i + n_w] for i in range(0, len(report.results), n_w)
    ]
    panel_keys = [
        (inter, size) for inter in interarrivals_ns for size in sizes_bytes
    ]
    for (inter, size), panel in zip(panel_keys, per_panel):
        cells.append(
            WeightSweepCell(
                interarrival_ns=inter,
                size_bytes=size,
                weight_ratios=np.array(weight_ratios),
                read_gbps=np.array([p["read"] for p in panel]),
                write_gbps=np.array([p["write"] for p in panel]),
            )
        )
    return cells, report


def run_weight_sweep(
    config: SSDConfig,
    *,
    interarrivals_ns: Sequence[float] = (10_000, 17_500, 25_000),
    sizes_bytes: Sequence[float] = (10 * 1024, 25 * 1024, 40 * 1024),
    weight_ratios: Sequence[int] = (1, 2, 4, 8, 16),
    duration_ns: int = 60_000_000,
    min_requests: int = 300,
    seed: int = 42,
    measure_start_fraction: float = 0.4,
    workers: int | None = 1,
) -> list[WeightSweepCell]:
    """Run the Fig. 5 grid; returns one cell per (inter-arrival, size)."""
    cells, _ = run_weight_sweep_with_report(
        config,
        interarrivals_ns=interarrivals_ns,
        sizes_bytes=sizes_bytes,
        weight_ratios=weight_ratios,
        duration_ns=duration_ns,
        min_requests=min_requests,
        seed=seed,
        measure_start_fraction=measure_start_fraction,
        workers=workers,
    )
    return cells
