"""Fig. 5: I/O throughput across weight ratios under different workloads.

A grid of micro workloads (rows: mean inter-arrival, columns: mean
request size, matching the paper's 10–25 µs × 10–40 KB panels) is
replayed at each weight ratio; each cell yields read/write throughput
curves whose shapes the paper's observations describe:

* equality at w = 1,
* read ↓ / write ↑ with w under moderate/heavy load,
* flat curves (WRR → RR) under light load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.experiments.replay import replay_on_device
from repro.nvme.ssq import SSQDriver
from repro.ssd.config import SSDConfig
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace


@dataclass
class WeightSweepCell:
    """One panel of the Fig. 5 grid."""

    interarrival_ns: float
    size_bytes: float
    weight_ratios: np.ndarray
    read_gbps: np.ndarray
    write_gbps: np.ndarray

    def read_monotone_nonincreasing(self, tolerance: float = 0.15) -> bool:
        """True when read throughput never rises by more than tolerance."""
        r = self.read_gbps
        scale = max(float(r.max()), 1e-9)
        return bool(np.all(np.diff(r) <= tolerance * scale))

    def control_effect(self) -> float:
        """Relative read-throughput reduction from w=1 to the max ratio."""
        base = float(self.read_gbps[0])
        if base <= 0:
            return 0.0
        return (base - float(self.read_gbps[-1])) / base


def run_weight_sweep(
    config: SSDConfig,
    *,
    interarrivals_ns: Sequence[float] = (10_000, 17_500, 25_000),
    sizes_bytes: Sequence[float] = (10 * 1024, 25 * 1024, 40 * 1024),
    weight_ratios: Sequence[int] = (1, 2, 4, 8, 16),
    duration_ns: int = 60_000_000,
    min_requests: int = 300,
    seed: int = 42,
    measure_start_fraction: float = 0.4,
) -> list[WeightSweepCell]:
    """Run the Fig. 5 grid; returns one cell per (inter-arrival, size).

    Each cell's trace spans ``duration_ns`` so deeply saturated devices
    (whose command latencies reach several ms) are measured at steady
    state rather than during the ramp.
    """
    if any(w < 1 for w in weight_ratios):
        raise ValueError("weight ratios must be >= 1")
    if duration_ns <= 0:
        raise ValueError("duration must be positive")
    cells: list[WeightSweepCell] = []
    for inter in interarrivals_ns:
        for size in sizes_bytes:
            wl = MicroWorkloadConfig(mean_interarrival_ns=inter, mean_size_bytes=size)
            n_requests = max(min_requests, int(duration_ns / inter))
            trace = generate_micro_trace(
                wl, n_reads=n_requests, n_writes=n_requests,
                seed=seed + int(inter) % 997 + int(size) % 991,
            )
            reads, writes = [], []
            for w in weight_ratios:
                result = replay_on_device(
                    trace,
                    config,
                    SSQDriver(1, w),
                    drain=False,
                    measure_start_fraction=measure_start_fraction,
                )
                reads.append(result.read_tput_gbps)
                writes.append(result.write_tput_gbps)
            cells.append(
                WeightSweepCell(
                    interarrival_ns=inter,
                    size_bytes=size,
                    weight_ratios=np.array(weight_ratios),
                    read_gbps=np.array(reads),
                    write_gbps=np.array(writes),
                )
            )
    return cells
