"""Plain-text table rendering for benchmark/experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render an aligned ASCII table (paper-style report output)."""
    if not headers:
        raise ValueError("need at least one column")
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_gbps(value: float) -> str:
    return f"{value:.2f} Gbps"


def format_percent(value: float) -> str:
    return f"{value * 100.0:.0f}%"
