"""Standard engine workloads for profiling and perf regression guards.

Two deterministic scenarios, used by ``benchmarks/smoke_cell.py``, the
``repro profile`` CLI subcommand, and the golden-trace test:

* :func:`engine_microbench` — pure event-loop throughput: self-
  rescheduling callback chains with a sprinkle of cancellations, no
  network or SSD model in the way.  This is the headline "events/sec"
  number for the DES core itself.
* :func:`build_incast_cell` / :func:`run_incast_cell` — a small
  packet-level in-cast: ``n_senders`` hosts blast messages at one
  receiver through a star switch, overloading the receiver downlink so
  ECN marking, CNPs, and DCQCN rate control all engage.  It exercises
  every network hot path (link serialization, NIC pacing, DCQCN timers)
  and is the scenario the golden dispatch trace is recorded from.

Both are seed-free and RNG-stable (the only randomness is the switch's
seeded ECN draw), so a run is exactly reproducible.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

from repro.net.nic import NICConfig
from repro.net.topology import Network, build_star
from repro.sim.engine import Simulator
from repro.sim.units import US, gbps_to_bytes_per_ns


@dataclass
class BenchResult:
    """Timing of one benchmark scenario."""

    events: int
    wall_s: float
    sim_end_ns: int

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "events": self.events,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec),
            "sim_end_ns": self.sim_end_ns,
        }


# -- pure engine microbench -------------------------------------------------

class _Chain:
    """A self-rescheduling callback chain with periodic cancellations.

    Every ``tick`` reschedules itself ``step_ns`` ahead; every fourth
    tick also schedules a decoy event and cancels it, exercising the
    cancellation path the same way DCQCN's cancel-and-reschedule
    pattern does.
    """

    __slots__ = ("sim", "step_ns", "remaining", "ticks")

    def __init__(self, sim: Simulator, step_ns: int, remaining: int) -> None:
        self.sim = sim
        self.step_ns = step_ns
        self.remaining = remaining
        self.ticks = 0

    def tick(self) -> None:
        self.ticks += 1
        self.remaining -= 1
        if self.remaining <= 0:
            return
        if self.ticks % 4 == 0:
            decoy = self.sim.schedule(self.step_ns * 2, self._decoy)
            decoy.cancel()
        self.sim.schedule(self.step_ns, self.tick)

    def _decoy(self) -> None:  # pragma: no cover - always cancelled
        raise AssertionError("cancelled decoy event must never fire")


def engine_microbench(
    *, n_events: int = 200_000, n_chains: int = 16, sim: Simulator | None = None
) -> BenchResult:
    """Dispatch ``n_events`` through interleaved callback chains.

    ``n_chains`` concurrent chains with co-prime-ish steps keep the heap
    populated (so pushes/pops pay real sift costs) rather than degenerate
    single-event ping-pong.
    """
    if n_events < n_chains:
        raise ValueError("need at least one event per chain")
    sim = sim or Simulator()
    per_chain = n_events // n_chains
    for i in range(n_chains):
        chain = _Chain(sim, step_ns=7 + 2 * i, remaining=per_chain)
        sim.schedule(1 + i, chain.tick)
    t0 = _time.perf_counter()
    dispatched = sim.run()
    wall = _time.perf_counter() - t0
    return BenchResult(events=dispatched, wall_s=wall, sim_end_ns=sim.now)


# -- packet-level incast cell -----------------------------------------------

class _Feeder:
    """Keeps one sender's TXQ loaded with fixed-size messages."""

    __slots__ = ("sim", "nic", "dst", "message_bytes", "gap_ns", "end_ns", "_feed_cb")

    def __init__(self, sim, nic, dst, message_bytes, gap_ns, end_ns) -> None:
        self.sim = sim
        self.nic = nic
        self.dst = dst
        self.message_bytes = message_bytes
        self.gap_ns = gap_ns
        self.end_ns = end_ns
        self._feed_cb = self.feed  # bound once; rescheduled every tick

    def feed(self) -> None:
        if self.sim.now >= self.end_ns:
            return
        self.nic.send_message(self.dst, self.message_bytes)
        self.sim.schedule_anon(self.gap_ns, self._feed_cb)


def build_incast_cell(
    *,
    n_senders: int = 3,
    duration_ns: int = 200 * US,
    message_bytes: int = 32 * 1024,
    trace: bool = False,
    sim: Simulator | None = None,
    nic_config: NICConfig | None = None,
) -> tuple[Simulator, Network]:
    """Wire the in-cast scenario and schedule its feeders (do not run).

    Each sender offers line rate toward ``r0``; with ``n_senders`` > 1
    the receiver downlink is oversubscribed, the switch queue crosses
    the ECN Kmin, and DCQCN engages on every sender flow.
    ``nic_config`` reaches every host (e.g. ``burst_segments`` for the
    dual-fidelity burst-pump variants).
    """
    if n_senders < 1:
        raise ValueError("need at least one sender")
    sim = sim or Simulator(trace=trace)
    names = [f"s{i}" for i in range(n_senders)] + ["r0"]
    net = build_star(sim, names, rate_gbps=40.0, delay_ns=US, nic_config=nic_config)
    # Offered load per sender == line rate.
    gap_ns = max(1, int(message_bytes / gbps_to_bytes_per_ns(40.0)))
    for i in range(n_senders):
        feeder = _Feeder(
            sim, net.hosts[f"s{i}"], "r0", message_bytes, gap_ns, duration_ns
        )
        sim.schedule_at(i, feeder.feed)  # staggered by 1 ns for determinism
    return sim, net


def run_incast_cell(
    *,
    n_senders: int = 3,
    duration_ns: int = 200 * US,
    message_bytes: int = 32 * 1024,
    trace: bool = False,
    sim: Simulator | None = None,
    nic_config: NICConfig | None = None,
) -> tuple[BenchResult, Simulator, Network]:
    """Run the in-cast cell to ``duration_ns`` plus drain margin."""
    sim, net = build_incast_cell(
        n_senders=n_senders,
        duration_ns=duration_ns,
        message_bytes=message_bytes,
        trace=trace,
        sim=sim,
        nic_config=nic_config,
    )
    t0 = _time.perf_counter()
    dispatched = sim.run(until=duration_ns + 50 * US)
    wall = _time.perf_counter() - t0
    return BenchResult(events=dispatched, wall_s=wall, sim_end_ns=sim.now), sim, net


def incast_outputs(net: Network) -> dict:
    """Externally visible outcomes of an in-cast run (for golden tests)."""
    receiver = net.hosts["r0"]
    senders = {
        name: nic for name, nic in net.hosts.items() if name != "r0"
    }
    return {
        "bytes_received": receiver.bytes_received,
        "messages_delivered": receiver.messages_delivered,
        "cnps_sent_per_sender": {
            name: len(nic.cnp_log) for name, nic in sorted(senders.items())
        },
        "final_rate_gbps": {
            name: flow.rate_control.current_rate_gbps
            for name, nic in sorted(senders.items())
            for flow in [nic.flows["r0"]]
            if "r0" in nic.flows
        },
        "cnp_counts": {
            name: nic.flows["r0"].rate_control.cnp_count
            for name, nic in sorted(senders.items())
            if "r0" in nic.flows
        },
        "switch_ecn_marks": net.switches["sw0"].ecn_marks,
        "switch_forwarded": net.switches["sw0"].packets_forwarded,
        "switch_dropped": net.switches["sw0"].packets_dropped,
    }
