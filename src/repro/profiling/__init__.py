"""Opt-in engine instrumentation: events/sec, callback sites, cProfile.

The plain :class:`repro.sim.engine.Simulator` keeps its dispatch loop
free of bookkeeping; this module provides the instrumented counterpart
for performance work:

* :class:`InstrumentedSimulator` — a drop-in ``Simulator`` whose ``run``
  additionally counts dispatches per callback site (``__qualname__``),
  measures wall-clock time, and snapshots the heap high-water mark.
  Slower than the plain engine; use it to find hot callbacks, not to
  produce results.
* :class:`EngineProfile` — the summary produced by
  :meth:`InstrumentedSimulator.profile`, JSON-ready via ``as_dict``.
* :func:`run_with_cprofile` — run any callable under :mod:`cProfile`
  and get back its result plus a cumulative-time report, for drilling
  below callback granularity into the engine itself.
* :mod:`repro.profiling.bench` — the standard scenarios
  (:func:`engine_microbench`, :func:`run_incast_cell`) that
  ``benchmarks/smoke_cell.py`` and the ``repro profile`` CLI subcommand
  time.
"""

from __future__ import annotations

import cProfile
import heapq
import io
import pstats
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.profiling.bench import (
    BenchResult,
    build_incast_cell,
    engine_microbench,
    incast_outputs,
    run_incast_cell,
)
from repro.sim.engine import MaxEventsExceeded, Simulator
from repro.sim.events import HANDLED_MARK

__all__ = [
    "BenchResult",
    "EngineProfile",
    "InstrumentedSimulator",
    "SanitizerCostProfile",
    "build_incast_cell",
    "engine_microbench",
    "incast_outputs",
    "run_incast_cell",
    "run_with_cprofile",
    "site_label",
]


def site_label(callback: Callable[..., Any]) -> str:
    """Stable label for a callback site (the profiling/sanitizer key)."""
    return getattr(callback, "__qualname__", None) or repr(callback)


@dataclass
class EngineProfile:
    """Aggregate engine statistics from an instrumented run."""

    events_dispatched: int = 0
    wall_s: float = 0.0
    heap_high_water: int = 0
    sim_end_ns: int = 0
    #: callback ``__qualname__`` -> dispatch count.
    site_counts: dict[str, int] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.events_dispatched / self.wall_s if self.wall_s > 0 else 0.0

    def top_sites(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` most-dispatched callback sites, descending."""
        return sorted(self.site_counts.items(), key=lambda kv: (-kv[1], kv[0]))[:n]

    def as_dict(self) -> dict:
        return {
            "events_dispatched": self.events_dispatched,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec),
            "heap_high_water": self.heap_high_water,
            "sim_end_ns": self.sim_end_ns,
            "site_counts": dict(self.top_sites(len(self.site_counts))),
        }

    def format(self, top: int = 10) -> str:
        lines = [
            f"events dispatched : {self.events_dispatched}",
            f"wall time         : {self.wall_s:.3f} s",
            f"events/sec        : {self.events_per_sec:,.0f}",
            f"heap high-water   : {self.heap_high_water}",
            f"sim end           : {self.sim_end_ns} ns",
            "top callback sites:",
        ]
        total = max(1, self.events_dispatched)
        for name, count in self.top_sites(top):
            lines.append(f"  {count:>10}  {100.0 * count / total:5.1f}%  {name}")
        return "\n".join(lines)


@dataclass
class SanitizerCostProfile:
    """Where the runtime sanitizer's checking budget went.

    Snapshot of a :class:`repro.analysis.sanitizer.Sanitizer`'s
    per-invariant-group counters: how many sweeps each group ran, how
    many violations it reported, and — when the sanitizer had
    ``enable_cost_tracking()`` on — the cumulative wall nanoseconds per
    group.  This is the number behind the stride-sampling trade-off:
    ``events_checked / events_dispatched`` quantifies what ``stride:K``
    saved, the per-group split says which invariant to thin out next.
    """

    #: Dispatched events that ran the full component sweep.
    events_checked: int = 0
    #: Total events the run dispatched (for the sampling-rate context).
    events_dispatched: int = 0
    #: group -> sweeps run / violations found / cumulative wall ns.
    check_counts: dict[str, int] = field(default_factory=dict)
    violation_counts: dict[str, int] = field(default_factory=dict)
    check_ns: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_simulator(cls, sim: Simulator) -> "SanitizerCostProfile":
        """Snapshot a sanitizing simulator's counters (post-run)."""
        sanitizer = sim.sanitizer
        if sanitizer is None:
            raise ValueError("simulator has no sanitizer attached")
        return cls(
            events_checked=sanitizer.events_checked,
            events_dispatched=sim.events_dispatched,
            check_counts=dict(sanitizer.check_counts),
            violation_counts=dict(sanitizer.violation_counts),
            check_ns=dict(sanitizer.check_ns),
        )

    @property
    def sampling_rate(self) -> float:
        """Fraction of dispatched events that paid a full sweep."""
        if self.events_dispatched <= 0:
            return 0.0
        return self.events_checked / self.events_dispatched

    def as_dict(self) -> dict:
        return {
            "events_checked": self.events_checked,
            "events_dispatched": self.events_dispatched,
            "sampling_rate": round(self.sampling_rate, 6),
            "check_counts": dict(self.check_counts),
            "violation_counts": dict(self.violation_counts),
            "check_ns": dict(self.check_ns),
        }

    def format(self) -> str:
        lines = [
            f"events checked    : {self.events_checked} of "
            f"{self.events_dispatched} dispatched "
            f"({100.0 * self.sampling_rate:.1f}%)",
            "per invariant group:",
        ]
        total_ns = max(1, sum(self.check_ns.values()))
        timed = any(self.check_ns.values())
        for group in self.check_counts:
            ns = self.check_ns.get(group, 0)
            cost = f"  {ns:>12} ns {100.0 * ns / total_ns:5.1f}%" if timed else ""
            lines.append(
                f"  {group:<10} {self.check_counts[group]:>10} sweeps"
                f"  {self.violation_counts.get(group, 0):>3} violations{cost}"
            )
        return "\n".join(lines)


class InstrumentedSimulator(Simulator):
    """A :class:`Simulator` that accounts every dispatch.

    The run loop mirrors the plain engine's (same pop order, same
    ``until``/``max_events`` semantics — simulations are bit-identical)
    but additionally tallies per-callback-site counts and wall time.
    """

    __slots__ = ("site_counts", "run_wall_s")

    def __init__(self, *, trace: bool = False) -> None:
        super().__init__(trace=trace)
        self.site_counts: dict[str, int] = {}
        self.run_wall_s: float = 0.0

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        trace = self._trace
        site_counts = self.site_counts
        batch_map = self._batch_callbacks
        coalesce = batch_map and max_events is None
        dispatched = 0
        t0 = _time.perf_counter()
        try:
            while heap:
                time, _seq, callback, tail = heap[0]
                if until is not None and time > until:
                    break
                heappop(heap)
                if callback is not HANDLED_MARK:
                    queue._live -= 1
                    self.now = time
                    name = site_label(callback)
                    if (
                        coalesce
                        and heap
                        and (head := heap[0])[0] == time
                        and head[2] is callback
                    ):
                        batch_callback = batch_map.get(callback)
                        if batch_callback is not None:
                            batch = [tail]
                            while heap:
                                head = heap[0]
                                if head[0] != time or head[2] is not callback:
                                    break
                                heappop(heap)
                                batch.append(head[3])
                            queue._live -= len(batch) - 1
                            site_counts[name] = site_counts.get(name, 0) + len(batch)
                            if trace:
                                self.dispatch_log.extend((time, name) for _ in batch)
                            batch_callback(batch)
                            dispatched += len(batch)
                            continue
                    site_counts[name] = site_counts.get(name, 0) + 1
                    if trace:
                        self.dispatch_log.append((time, name))
                    callback(*tail)
                else:
                    ev = tail
                    if ev.cancelled:
                        queue._dead -= 1
                        continue
                    ev._queue = None
                    queue._live -= 1
                    self.now = time
                    callback = ev.callback
                    name = site_label(callback)
                    site_counts[name] = site_counts.get(name, 0) + 1
                    if trace:
                        self.dispatch_log.append((time, name))
                    args = ev.args
                    if args:
                        callback(*args)
                    else:
                        callback()
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    raise MaxEventsExceeded(
                        max_events, dispatched, queue._live, self.now
                    )
        finally:
            self.events_dispatched += dispatched
            self.run_wall_s += _time.perf_counter() - t0
        if until is not None and until > self.now:
            self.now = until
        return dispatched

    def profile(self) -> EngineProfile:
        """Snapshot the statistics accumulated so far."""
        return EngineProfile(
            events_dispatched=self.events_dispatched,
            wall_s=self.run_wall_s,
            heap_high_water=self._queue.high_water,
            sim_end_ns=self.now,
            site_counts=dict(self.site_counts),
        )


def run_with_cprofile(
    fn: Callable[[], Any], *, top: int = 25, sort: str = "cumulative"
) -> tuple[Any, str]:
    """Run ``fn`` under :mod:`cProfile`; return ``(result, report_text)``.

    Complements :class:`InstrumentedSimulator`: site counts say *which
    callbacks* dominate, the cProfile report says *where inside them*
    (and inside the engine) the time goes.
    """
    profiler = cProfile.Profile()
    result = profiler.runcall(fn)
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).strip_dirs().sort_stats(sort).print_stats(top)
    return result, buf.getvalue()
