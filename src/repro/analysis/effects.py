"""Interprocedural effect-and-escape summaries for the shard-safety pass.

ROADMAP item 1 (sharded DES with conservative lookahead) is only sound
if no event callback reaches across a future shard boundary except
through the message-passing surface.  This module computes, for every
project function, a summary of what running it can do to component
state — then propagates those summaries bottom-up over the call graph's
*synchronous* edges to a fixed point, so a callback's summary covers
its whole same-event call tree:

* ``writes`` — component attributes stored to (own ``self`` state and
  directly-addressed foreign component state), each with its owner
  class, owner domain (:data:`repro.analysis.manifest.COMPONENT_CLASSES`),
  and source location;
* ``touch_domains`` — the owner domains the function's event can write,
  with **no** API absorption: the raw footprint a shard scheduler must
  assume (feeds SIM302);
* ``remote_domains`` — owner domains of components reached through a
  structural-dispatch boundary (a Protocol receiver or getattr-wired
  duck method): the far side of a wire.  Only crossings into
  :data:`COMPONENT_CLASSES` members count — an object with no owner
  domain is a shard-local satellite of whoever calls it (feeds SIM302);
* ``rng`` / ``io`` — whether the tree draws randomness / performs I/O;
* ``boundary_calls`` — call sites entering a *private* method of a
  foreign-domain component (the raw material of SIM301).

Propagation rules (the absorption lattice):

* ``writes`` flow caller-ward over every synchronous edge, except that
  entering a component's **public API** (a non-underscore method of a
  :data:`COMPONENT_CLASSES` class) absorbs the callee's writes to *its
  own* class — a documented API call is the sanctioned way to effect
  another component, so only the residue (private writes to third
  components) keeps propagating.  ``wired`` edges (registered callback
  attributes) absorb the same way: registration is consent.
* ``touch_domains`` and ``remote_domains`` flow with no absorption over
  every synchronous edge *except* ``wired`` ones — a wiring is a
  colocation assertion made at topology-build time (you can only
  register a callback on an object you share memory with), so wired
  effects never count as a shard crossing.
* ``rng``/``io`` flow over every synchronous edge.

Everything is monotone over finite sets, so plain Kleene iteration
converges — including for mutual recursion and duck-dispatch cycles.

Summaries are cached next to the AST index as ``effects.json``, keyed
by a digest of every module's content hash: any file edit invalidates
the whole effect map (summaries are interprocedural, so per-file
invalidation would be unsound).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.callgraph import CallGraph, FunctionInfo, ProjectIndex
from repro.analysis.manifest import COMPONENT_CLASSES

__all__ = [
    "BoundaryCall",
    "EffectMap",
    "EffectSummary",
    "GlobalWrite",
    "WriteRecord",
    "compute_effects",
    "effects_cache_path",
    "load_or_compute_effects",
    "project_digest",
]

#: Version 2 added ``global_sites`` (state-escape records feeding the
#: snapshot-completeness rule SIM402) — a version-1 cache deserializes
#: without them, so the bump forces a recompute.
_EFFECTS_VERSION = 2

#: Generator-style draw methods: a call to one of these marks the
#: function as consuming randomness (summary payload; SIM002/SIM303
#: police *where the stream came from*, this records that it is used).
_RNG_METHODS = frozenset(
    {
        "random", "integers", "normal", "exponential", "uniform",
        "choice", "shuffle", "poisson", "standard_normal", "bit_generator",
    }
)

_IO_BUILTINS = frozenset({"open", "print", "input"})
_IO_ROOTS = frozenset({"os", "subprocess", "shutil", "socket"})


@dataclass(frozen=True)
class WriteRecord:
    """One component-attribute store, attributed to its owner."""

    cls: str  # owner class qualname
    domain: str  # owner domain from COMPONENT_CLASSES
    attr: str
    path: str
    line: int
    col: int

    def as_dict(self) -> dict:
        return {
            "cls": self.cls, "domain": self.domain, "attr": self.attr,
            "path": self.path, "line": self.line, "col": self.col,
        }

    @staticmethod
    def from_dict(d: dict) -> "WriteRecord":
        return WriteRecord(
            cls=d["cls"], domain=d["domain"], attr=d["attr"],
            path=d["path"], line=d["line"], col=d["col"],
        )


@dataclass(frozen=True)
class BoundaryCall:
    """A call site entering a private foreign-domain component method."""

    caller: str  # enclosing function qualname
    callee: str  # private method qualname
    callee_cls: str
    callee_domain: str
    path: str
    line: int
    col: int

    def as_dict(self) -> dict:
        return {
            "caller": self.caller, "callee": self.callee,
            "callee_cls": self.callee_cls, "callee_domain": self.callee_domain,
            "path": self.path, "line": self.line, "col": self.col,
        }

    @staticmethod
    def from_dict(d: dict) -> "BoundaryCall":
        return BoundaryCall(
            caller=d["caller"], callee=d["callee"],
            callee_cls=d["callee_cls"], callee_domain=d["callee_domain"],
            path=d["path"], line=d["line"], col=d["col"],
        )


@dataclass(frozen=True)
class GlobalWrite:
    """One write to mutable state *outside* the checkpoint root set.

    The checkpoint payload is exactly ``{sim, world, counters}``
    (:mod:`repro.sim.checkpoint`): anything a dispatch-reachable
    function writes that is not hanging off those objects — a
    module-level global, a class attribute, a mutable default argument,
    a raw ``itertools.count`` stream — silently resets (or stays stale)
    on restore.  The direct pass records every such write; SIM402
    (:mod:`repro.analysis.snapshots`) filters by dispatch reachability
    and package scope.
    """

    function: str  # qualname of the writing function
    kind: str  # module-global | class-attr | default-arg | raw-counter
    name: str  # global / class attribute / parameter / counter name
    path: str
    line: int
    col: int

    def as_dict(self) -> dict:
        return {
            "function": self.function, "kind": self.kind, "name": self.name,
            "path": self.path, "line": self.line, "col": self.col,
        }

    @staticmethod
    def from_dict(d: dict) -> "GlobalWrite":
        return GlobalWrite(
            function=d["function"], kind=d["kind"], name=d["name"],
            path=d["path"], line=d["line"], col=d["col"],
        )


@dataclass
class EffectSummary:
    """Propagated effects of one function's synchronous call tree."""

    writes: frozenset[WriteRecord] = frozenset()
    touch_domains: frozenset[str] = frozenset()
    remote_domains: frozenset[str] = frozenset()
    rng: bool = False
    io: bool = False

    def writes_to(self, cls: str) -> bool:
        return any(w.cls == cls for w in self.writes)

    def as_dict(self) -> dict:
        return {
            "writes": [w.as_dict() for w in sorted(self.writes, key=lambda w: (w.path, w.line, w.col, w.attr))],
            "touch_domains": sorted(self.touch_domains),
            "remote_domains": sorted(self.remote_domains),
            "rng": self.rng,
            "io": self.io,
        }

    @staticmethod
    def from_dict(d: dict) -> "EffectSummary":
        return EffectSummary(
            writes=frozenset(WriteRecord.from_dict(w) for w in d["writes"]),
            touch_domains=frozenset(d["touch_domains"]),
            remote_domains=frozenset(d["remote_domains"]),
            rng=d["rng"],
            io=d["io"],
        )


@dataclass
class EffectMap:
    """The whole project's propagated summaries plus SIM301 raw sites."""

    summaries: dict[str, EffectSummary] = field(default_factory=dict)
    boundary_calls: list[BoundaryCall] = field(default_factory=list)
    #: Raw out-of-root-set writes (SIM402 material): per-function, not
    #: propagated — dispatch reachability already closes over callees.
    global_sites: list[GlobalWrite] = field(default_factory=list)
    digest: str = ""
    iterations: int = 0  # fixed-point rounds until convergence

    def summary(self, qualname: str) -> EffectSummary:
        return self.summaries.get(qualname, EffectSummary())


# ---------------------------------------------------------------------------
# direct (intraprocedural) effects
# ---------------------------------------------------------------------------

def _store_base(target: ast.expr) -> ast.expr | None:
    """The object a store chain mutates (``obj.a[k] = v`` -> ``obj``)."""
    if isinstance(target, ast.Attribute):
        return target.value
    if isinstance(target, ast.Subscript):
        return _store_base(target.value)
    return None


def _root_name(expr: ast.expr) -> str | None:
    """The name at the root of an attribute/subscript chain, or None."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _store_attr(target: ast.expr) -> str | None:
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Subscript):
        return _store_attr(target.value)
    return None


def _dotted_call_name(node: ast.Call) -> str | None:
    parts: list[str] = []
    func: ast.expr = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
        return ".".join(reversed(parts))
    return None


#: Constructors whose module-level result is mutable container state.
_MUTABLE_CTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)
#: Methods that mutate a container in place.
_MUTATING_METHODS = frozenset(
    {
        "append", "appendleft", "add", "update", "setdefault", "pop",
        "popleft", "popitem", "clear", "extend", "extendleft", "remove",
        "discard", "insert",
    }
)


@dataclass(frozen=True)
class _ModuleGlobals:
    """Module-level mutable names, classified once per module."""

    mutable: frozenset[str]  # containers: dict/list/set/… literals + ctors
    counters: frozenset[str]  # raw itertools.count streams


def _resolved_call_dotted(
    node: ast.Call, imports: dict[str, str]
) -> str | None:
    """Dotted call-head name with its first segment import-resolved."""
    dotted = _dotted_call_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    head = imports.get(head, head)
    return f"{head}.{rest}" if rest else head


def _module_globals(mod) -> _ModuleGlobals:
    """Classify a module's top-level assignments.

    ``SerialCounter(...)`` bindings are deliberately *not* recorded:
    registry-named counters are the sanctioned, checkpoint-visible id
    stream (:mod:`repro.sim.serial`).
    """
    mutable: set[str] = set()
    counters: set[str] = set()
    for stmt in mod.tree.body:
        targets: list[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            continue
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                              ast.ListComp, ast.SetComp)):
            mutable.update(names)
        elif isinstance(value, ast.Call):
            resolved = _resolved_call_dotted(value, mod.imports) or ""
            tail = resolved.rsplit(".", 1)[-1]
            if resolved == "itertools.count" or resolved.endswith(
                ".itertools.count"
            ):
                counters.update(names)
            elif tail in _MUTABLE_CTORS:
                mutable.update(names)
    return _ModuleGlobals(
        mutable=frozenset(mutable), counters=frozenset(counters)
    )


class _DirectEffects:
    """One function's own effects, before propagation."""

    def __init__(
        self,
        index: ProjectIndex,
        fn: FunctionInfo,
        globals_inv: _ModuleGlobals | None = None,
    ) -> None:
        self.index = index
        self.fn = fn
        self.enclosing = index.classes.get(fn.cls) if fn.cls is not None else None
        self.env = index.env_for_function(fn)
        self.module_info = index.modules.get(fn.module)
        self.globals_inv = globals_inv or _ModuleGlobals(frozenset(), frozenset())
        self.writes: set[WriteRecord] = set()
        self.boundary_calls: list[BoundaryCall] = []
        self.global_sites: list[GlobalWrite] = []
        self.rng = False
        self.io = False
        # Names the function binds locally (params + stores): a local
        # shadowing a module global is not module state.
        self._locals: set[str] = {p.name for p in fn.params}
        self._global_decls: set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                self._global_decls.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                self._locals.add(node.id)
        self._locals -= self._global_decls

    def collect(self) -> None:
        fn = self.fn
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    self._record_store(node, target)
                    self._record_escape_store(node, target)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._record_store(node, target)
            elif isinstance(node, ast.Call):
                self._record_call(node)
                self._record_escape_call(node)
        self._record_default_arg_caches()

    def _owner_of(self, base: ast.expr) -> str | None:
        """Component-class qualname owning a store base, or None."""
        if isinstance(base, ast.Name) and base.id == "self":
            return self.fn.cls if self.fn.cls in COMPONENT_CLASSES else None
        owner = self.index.type_of_expr(
            base, module=self.fn.module, enclosing=self.enclosing, env=self.env
        )
        if owner is not None and owner.qualname in COMPONENT_CLASSES:
            return owner.qualname
        return None

    def _record_store(self, node: ast.stmt, target: ast.expr) -> None:
        base = _store_base(target)
        if base is None:
            return
        owner = self._owner_of(base)
        if owner is None:
            return
        attr = _store_attr(target) or ""
        if self.module_info is None:
            return
        self.writes.add(
            WriteRecord(
                cls=owner,
                domain=COMPONENT_CLASSES[owner],
                attr=attr,
                path=self.module_info.path,
                line=node.lineno,
                col=node.col_offset,
            )
        )

    # -- out-of-root-set state escapes (SIM402 material) ----------------
    def _emit_global(
        self, kind: str, name: str, node: ast.AST
    ) -> None:
        if self.module_info is None:
            return
        self.global_sites.append(
            GlobalWrite(
                function=self.fn.qualname,
                kind=kind,
                name=name,
                path=self.module_info.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
            )
        )

    def _class_attr_of(self, target: ast.expr) -> str | None:
        """``Cls.attr = …`` / ``type(self).attr = …`` -> ``Cls.attr``."""
        node: ast.expr = target
        while isinstance(node, ast.Subscript):
            node = node.value
        if not isinstance(node, ast.Attribute):
            return None
        base = node.value
        if isinstance(base, ast.Name) and base.id not in self._locals:
            qual = self.index.resolve_dotted(self.fn.module, base.id)
            if qual is not None and qual in self.index.classes:
                return f"{base.id}.{node.attr}"
        if (
            isinstance(base, ast.Call)
            and isinstance(base.func, ast.Name)
            and base.func.id == "type"
            and base.args
        ):
            return f"type(...).{node.attr}"
        return None

    def _record_escape_store(self, node: ast.stmt, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if target.id in self._global_decls:
                self._emit_global("module-global", target.id, node)
            return
        root = _root_name(target)
        if (
            root is not None
            and root in self.globals_inv.mutable
            and root not in self._locals
            and not isinstance(target, ast.Name)
        ):
            self._emit_global("module-global", root, node)
            return
        cls_attr = self._class_attr_of(target)
        if cls_attr is not None:
            self._emit_global("class-attr", cls_attr, node)

    def _record_escape_call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "next"
            and node.args
            and isinstance(node.args[0], ast.Name)
            and node.args[0].id in self.globals_inv.counters
            and node.args[0].id not in self._locals
        ):
            self._emit_global("raw-counter", node.args[0].id, node)
            return
        if not (
            isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS
        ):
            return
        root = _root_name(func.value)
        if (
            root is not None
            and root in self.globals_inv.mutable
            and root not in self._locals
        ):
            self._emit_global("module-global", root, node)
            return
        cls_attr = self._class_attr_of(func.value)
        if cls_attr is not None:
            self._emit_global("class-attr", cls_attr, node)

    def _record_default_arg_caches(self) -> None:
        """Mutable default arguments the body writes into: one shared
        instance across calls, living on the function object — outside
        every checkpoint payload."""
        args = self.fn.node.args
        pos = [*args.posonlyargs, *args.args]
        pairs = list(zip(pos[len(pos) - len(args.defaults):], args.defaults))
        pairs += [
            (a, d) for a, d in zip(args.kwonlyargs, args.kw_defaults)
            if d is not None
        ]
        for arg, default in pairs:
            if not isinstance(
                default, (ast.Dict, ast.List, ast.Set)
            ) and not (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CTORS
            ):
                continue
            if self._param_is_mutated(arg.arg):
                self._emit_global("default-arg", arg.arg, default)

    def _param_is_mutated(self, name: str) -> bool:
        for node in ast.walk(self.fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Name) and (
                        _root_name(target) == name
                    ):
                        return True
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_METHODS
                and _root_name(node.func.value) == name
            ):
                return True
        return False

    def _record_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _IO_BUILTINS:
            self.io = True
        dotted = _dotted_call_name(node)
        if dotted is not None:
            root_local = dotted.split(".")[0]
            root = root_local
            if self.module_info is not None:
                root = self.module_info.imports.get(root_local, root_local)
            if root.split(".")[0] in _IO_ROOTS and not dotted.startswith(
                ("os.path.", "os.environ.")
            ):
                self.io = True
        if isinstance(func, ast.Attribute) and func.attr in _RNG_METHODS:
            # Receiver named like an rng stream, or statically untypable
            # draw methods: count the draw; lineage is SIM303's problem.
            recv = func.value
            recv_name = (
                recv.attr if isinstance(recv, ast.Attribute)
                else recv.id if isinstance(recv, ast.Name) else ""
            )
            if "rng" in recv_name.lower():
                self.rng = True
        # SIM301 raw sites: entering a private method of a component in
        # a *different* domain than the enclosing method's class.
        if (
            isinstance(func, ast.Attribute)
            and func.attr.startswith("_")
            and not func.attr.startswith("__")
            and self.fn.cls in COMPONENT_CLASSES
        ):
            callee = self.index.resolve_call(
                node, module=self.fn.module, enclosing=self.enclosing, env=self.env
            )
            if (
                callee is not None
                and callee.cls is not None
                and callee.cls in COMPONENT_CLASSES
                and COMPONENT_CLASSES[callee.cls]
                != COMPONENT_CLASSES[self.fn.cls]
                and not (
                    isinstance(func.value, ast.Name) and func.value.id == "self"
                )
                and self.module_info is not None
            ):
                self.boundary_calls.append(
                    BoundaryCall(
                        caller=self.fn.qualname,
                        callee=callee.qualname,
                        callee_cls=callee.cls,
                        callee_domain=COMPONENT_CLASSES[callee.cls],
                        path=self.module_info.path,
                        line=node.lineno,
                        col=node.col_offset,
                    )
                )


# ---------------------------------------------------------------------------
# fixed-point propagation
# ---------------------------------------------------------------------------

def _is_api_method(fn: FunctionInfo | None) -> bool:
    """Public method of a component class — the documented API surface."""
    return (
        fn is not None
        and fn.cls is not None
        and fn.cls in COMPONENT_CLASSES
        and not fn.name.startswith("_")
    )


def compute_effects(index: ProjectIndex, graph: CallGraph) -> EffectMap:
    """Direct effects + Kleene fixed-point propagation over sync edges."""
    direct: dict[str, _DirectEffects] = {}
    boundary_calls: list[BoundaryCall] = []
    global_sites: list[GlobalWrite] = []
    inventories: dict[str, _ModuleGlobals] = {}
    for qualname, fn in sorted(index.functions.items()):
        inv = inventories.get(fn.module)
        if inv is None:
            mod = index.modules.get(fn.module)
            inv = (
                _module_globals(mod) if mod is not None
                else _ModuleGlobals(frozenset(), frozenset())
            )
            inventories[fn.module] = inv
        de = _DirectEffects(index, fn, inv)
        de.collect()
        direct[qualname] = de
        boundary_calls.extend(de.boundary_calls)
        global_sites.extend(de.global_sites)

    writes: dict[str, frozenset[WriteRecord]] = {
        q: frozenset(d.writes) for q, d in direct.items()
    }
    touches: dict[str, frozenset[str]] = {
        q: frozenset(w.domain for w in d.writes) for q, d in direct.items()
    }
    remote: dict[str, frozenset[str]] = {q: frozenset() for q in direct}
    rng: dict[str, bool] = {q: d.rng for q, d in direct.items()}
    io: dict[str, bool] = {q: d.io for q, d in direct.items()}
    for caller, callee in graph.remote_pairs:
        callee_fn = index.functions.get(callee)
        if caller not in remote or callee_fn is None:
            continue
        domain = COMPONENT_CLASSES.get(callee_fn.cls or "")
        if domain is not None:
            remote[caller] = remote[caller] | {domain}

    order = sorted(direct)
    iterations = 0
    changed = True
    while changed:
        changed = False
        iterations += 1
        for caller in order:
            callees = graph.sync_edges.get(caller)
            if not callees:
                continue
            w = writes[caller]
            t = touches[caller]
            rem, rn, i_o = remote[caller], rng[caller], io[caller]
            for callee in callees:
                if callee not in writes:
                    continue
                wired = (caller, callee) in graph.wired_pairs
                callee_fn = index.functions.get(callee)
                absorb_own = wired or _is_api_method(callee_fn)
                cw = writes[callee]
                if absorb_own and callee_fn is not None and callee_fn.cls:
                    cw = frozenset(
                        x for x in cw if x.cls != callee_fn.cls
                    )
                w = w | cw
                if not wired:
                    t = t | touches[callee]
                    rem = rem | remote[callee]
                rn = rn or rng[callee]
                i_o = i_o or io[callee]
            if (
                w != writes[caller]
                or t != touches[caller]
                or rem != remote[caller]
                or rn != rng[caller]
                or i_o != io[caller]
            ):
                writes[caller] = w
                touches[caller] = t
                remote[caller] = rem
                rng[caller] = rn
                io[caller] = i_o
                changed = True

    summaries = {
        q: EffectSummary(
            writes=writes[q],
            touch_domains=touches[q],
            remote_domains=remote[q],
            rng=rng[q],
            io=io[q],
        )
        for q in order
    }
    return EffectMap(
        summaries=summaries,
        boundary_calls=boundary_calls,
        global_sites=global_sites,
        digest=project_digest(index),
        iterations=iterations,
    )


# ---------------------------------------------------------------------------
# the effects.json cache
# ---------------------------------------------------------------------------

def project_digest(index: ProjectIndex) -> str:
    """Content digest of every indexed module, order-independent."""
    h = hashlib.sha256()
    for name in sorted(index.modules):
        mod = index.modules[name]
        h.update(name.encode())
        h.update(hashlib.sha256(mod.source.encode()).digest())
    return h.hexdigest()


def effects_cache_path(cache_path: Path | None) -> Path | None:
    """``effects.json`` beside the AST index cache (None disables)."""
    if cache_path is None:
        return None
    return cache_path.parent / "effects.json"


def load_or_compute_effects(
    index: ProjectIndex,
    graph: CallGraph,
    cache_path: Path | None,
) -> EffectMap:
    """Return cached summaries when the project digest matches, else
    recompute and rewrite the cache.  A stale or corrupt cache can only
    cost a recompute, never produce stale analysis.
    """
    digest = project_digest(index)
    if cache_path is not None and cache_path.exists():
        try:
            data = json.loads(cache_path.read_text())
            if (
                data.get("version") == _EFFECTS_VERSION
                and data.get("digest") == digest
            ):
                return EffectMap(
                    summaries={
                        q: EffectSummary.from_dict(s)
                        for q, s in data["functions"].items()
                    },
                    boundary_calls=[
                        BoundaryCall.from_dict(b)
                        for b in data["boundary_calls"]
                    ],
                    global_sites=[
                        GlobalWrite.from_dict(g)
                        for g in data["global_sites"]
                    ],
                    digest=digest,
                    iterations=data.get("iterations", 0),
                )
        except (ValueError, KeyError, TypeError):
            pass  # corrupt cache: fall through to recompute
    effects = compute_effects(index, graph)
    if cache_path is not None:
        try:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            cache_path.write_text(
                json.dumps(
                    {
                        "version": _EFFECTS_VERSION,
                        "digest": effects.digest,
                        "iterations": effects.iterations,
                        "functions": {
                            q: s.as_dict()
                            for q, s in sorted(effects.summaries.items())
                        },
                        "boundary_calls": [
                            b.as_dict() for b in effects.boundary_calls
                        ],
                        "global_sites": [
                            g.as_dict() for g in effects.global_sites
                        ],
                    },
                    indent=1,
                )
                + "\n"
            )
        except OSError:
            pass  # caching is best-effort
    return effects
