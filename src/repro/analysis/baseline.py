"""Baseline / suppression workflow for the whole-program linter.

New whole-program rules land against an existing codebase; a baseline
lets them gate *new* findings in CI from day one while pre-existing
ones are burned down deliberately.  The checked-in file
(``benchmarks/results/lint_baseline.json``) maps each accepted finding
to a mandatory human-written ``reason``:

.. code-block:: json

    {"version": 1,
     "entries": [
       {"rule": "SIM202",
        "path": "src/repro/net/nic.py",
        "line_text": "nic._txq_used -= seg",
        "reason": "hot path: pump inlines the TXQ refund"}]}

Matching is by ``(rule, relative path, stripped source line)`` — line
*text*, not line number, so unrelated edits above a baselined finding
don't invalidate it, while any change to the offending line forces a
fresh look.  ``repro lint --update-baseline`` rewrites the file from
the current findings, carrying reasons forward for entries that still
match and stamping ``"TODO: justify"`` on new ones (CI's
empty-or-justified test then fails until a human writes the reason).

Stale entries (the finding they suppressed no longer fires) get one
grace run: the first gated run that misses an entry rewrites the file
with a persisted ``"stale": true`` marker and still passes; a second
run that misses the *same* entry fails — a baseline that suppresses
nothing is a suppression waiting to hide a regression.
``repro lint --prune-baseline`` drops currently-stale entries
immediately instead.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from repro.analysis.simlint import Violation

__all__ = [
    "BaselineEntry",
    "DEFAULT_BASELINE_PATH",
    "apply_baseline",
    "load_baseline",
    "prune_stale",
    "reconcile_stale",
    "update_baseline",
    "write_baseline",
]

_VERSION = 1
TODO_REASON = "TODO: justify"

#: Repo-relative location of the checked-in baseline.
DEFAULT_BASELINE_PATH = Path("benchmarks/results/lint_baseline.json")


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding."""

    rule: str
    path: str  # repo-relative, forward slashes
    line_text: str  # stripped source of the flagged line
    reason: str
    #: Persisted marker: this entry matched nothing on the previous
    #: gated run.  Stale for a second consecutive run -> CI failure.
    stale: bool = False

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.line_text)


def _relative_path(path: str, root: Path | None) -> str:
    p = Path(path)
    if root is not None:
        try:
            p = p.resolve().relative_to(root.resolve())
        except ValueError:
            pass
    return p.as_posix()


def _line_text(violation: Violation, sources: dict[str, list[str]]) -> str:
    lines = sources.get(violation.path)
    if lines is None:
        try:
            lines = Path(violation.path).read_text().splitlines()
        except OSError:
            lines = []
        sources[violation.path] = lines
    if 1 <= violation.line <= len(lines):
        return lines[violation.line - 1].strip()
    return ""


def violation_key(
    violation: Violation,
    *,
    root: Path | None,
    sources: dict[str, list[str]],
) -> tuple[str, str, str]:
    return (
        violation.rule,
        _relative_path(violation.path, root),
        _line_text(violation, sources),
    )


def load_baseline(path: Path) -> list[BaselineEntry]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return []
    data = json.loads(path.read_text())
    if data.get("version") != _VERSION:
        raise ValueError(
            f"unsupported lint baseline version {data.get('version')!r} "
            f"in {path}"
        )
    return [
        BaselineEntry(
            rule=entry["rule"],
            path=entry["path"],
            line_text=entry["line_text"],
            reason=entry.get("reason", ""),
            stale=bool(entry.get("stale", False)),
        )
        for entry in data.get("entries", [])
    ]


def write_baseline(path: Path, entries: list[BaselineEntry]) -> None:
    payload = {
        "version": _VERSION,
        "entries": [
            {
                "rule": e.rule,
                "path": e.path,
                "line_text": e.line_text,
                "reason": e.reason,
                # Written only when set: untouched baselines stay
                # byte-identical across versions.
                **({"stale": True} if e.stale else {}),
            }
            for e in sorted(entries, key=lambda e: e.key)
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def apply_baseline(
    violations: list[Violation],
    entries: list[BaselineEntry],
    *,
    root: Path | None = None,
) -> tuple[list[Violation], list[BaselineEntry]]:
    """Split findings into (new, matched-baseline-entries).

    Each baseline entry absorbs any number of matching findings on the
    same line (a line with two identical-rule findings needs one entry).
    Returns the findings *not* covered plus the entries that matched
    (so callers can report stale entries: ``set(entries) - matched``).
    """
    by_key = {e.key: e for e in entries}
    sources: dict[str, list[str]] = {}
    fresh: list[Violation] = []
    matched: list[BaselineEntry] = []
    for violation in violations:
        entry = by_key.get(violation_key(violation, root=root, sources=sources))
        if entry is None:
            fresh.append(violation)
        elif entry not in matched:
            matched.append(entry)
    return fresh, matched


def reconcile_stale(
    path: Path,
    entries: list[BaselineEntry],
    matched: list[BaselineEntry],
) -> tuple[list[BaselineEntry], list[BaselineEntry]]:
    """Persist stale markers after a gated run.

    Returns ``(newly_stale, expired)``: entries that just went stale
    (marked in the file, one grace run) and entries that were *already*
    marked stale and still match nothing — stale for more than one run,
    so the caller should fail the gate.  An entry that matches again is
    unmarked.  Rewrites ``path`` only when a marker changed.
    """
    matched_keys = {e.key for e in matched}
    updated: list[BaselineEntry] = []
    newly_stale: list[BaselineEntry] = []
    expired: list[BaselineEntry] = []
    dirty = False
    for entry in entries:
        if entry.key in matched_keys:
            if entry.stale:
                entry = replace(entry, stale=False)
                dirty = True
        elif entry.stale:
            expired.append(entry)
        else:
            entry = replace(entry, stale=True)
            newly_stale.append(entry)
            dirty = True
        updated.append(entry)
    if dirty:
        write_baseline(path, updated)
    return newly_stale, expired


def prune_stale(
    path: Path,
    entries: list[BaselineEntry],
    matched: list[BaselineEntry],
) -> list[BaselineEntry]:
    """Drop every entry that matched nothing this run; returns them.

    Rewrites ``path`` (without stale markers — pruning resets the
    grace clock) only when something was dropped.
    """
    matched_keys = {e.key for e in matched}
    kept = [replace(e, stale=False) for e in entries if e.key in matched_keys]
    pruned = [e for e in entries if e.key not in matched_keys]
    if pruned:
        write_baseline(path, kept)
    return pruned


def update_baseline(
    path: Path,
    violations: list[Violation],
    *,
    root: Path | None = None,
) -> list[BaselineEntry]:
    """Rewrite the baseline from current findings, keeping old reasons."""
    previous = {e.key: e for e in load_baseline(path)}
    sources: dict[str, list[str]] = {}
    entries: dict[tuple[str, str, str], BaselineEntry] = {}
    for violation in violations:
        key = violation_key(violation, root=root, sources=sources)
        old = previous.get(key)
        entries[key] = BaselineEntry(
            rule=key[0],
            path=key[1],
            line_text=key[2],
            reason=old.reason if old is not None else TODO_REASON,
        )
    result = list(entries.values())
    write_baseline(path, result)
    return result
