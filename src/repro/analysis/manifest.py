"""Manifests consumed by the determinism linter (:mod:`repro.analysis.simlint`).

Centralising *which* packages are simulation code and *which* classes
sit on the per-event hot path keeps the lint rules data-driven: adding a
new hot-path type (or a new simulation package) means editing a tuple
here, not a rule implementation.
"""

from __future__ import annotations

#: Packages whose modules run *inside* the simulated clock.  Wall-clock
#: reads (SIM001), out-of-band randomness (SIM002), unordered iteration
#: (SIM003), and swallowed exceptions (SIM005) in these packages can
#: silently break the bit-identical-replay guarantee the golden-trace
#: and parallel==serial tests rely on.
SIM_PACKAGES: tuple[str, ...] = (
    "repro.sim",
    "repro.net",
    "repro.ssd",
    "repro.nvme",
    "repro.fabric",
    "repro.core",
    "repro.workloads",
    "repro.faults",
)

#: Packages where randomness is still required to flow through
#: :mod:`repro.sim.rng` even though they run outside the simulated clock
#: (their draws feed deterministic experiment results).
RNG_EXTRA_PACKAGES: tuple[str, ...] = (
    "repro.ml",
    "repro.experiments",
)

#: Modules allowed to touch ``numpy.random`` constructors directly —
#: the single chokepoint every other module must import from.
RNG_EXEMPT_MODULES: tuple[str, ...] = ("repro.sim.rng",)

#: Components with an *owner*: the whole-program purity pass (SIM202,
#: :mod:`repro.analysis.purity`) flags a dispatch-reachable callback
#: that stores directly into an attribute of a foreign instance of one
#: of these classes.  Cross-component effects must go through a method
#: call (the documented API) or through ``Simulator.schedule`` so the
#: golden-trace replay contract stays auditable at call boundaries.
COMPONENT_CLASSES: tuple[str, ...] = (
    "repro.sim.engine.Simulator",
    "repro.net.link.Link",
    "repro.net.switch.Switch",
    "repro.net.nic.NIC",
    "repro.net.nic.Flow",
    "repro.net.reliability.FlowReliability",
    "repro.net.dcqcn.DCQCNRateControl",
    "repro.net.fluid.FluidDomain",
    "repro.net.fluid.FluidFlow",
    "repro.ssd.flash.FlashBackend",
    "repro.ssd.controller.SSDController",
    "repro.nvme.wrr.TokenWRR",
    "repro.fabric.initiator.Initiator",
    "repro.fabric.target.Target",
)

#: Modules exempt from the unit-mixing rules (SIM101/SIM104): they
#: *define* the conversions, so units legitimately meet there.
UNITS_EXEMPT_MODULES: tuple[str, ...] = (
    "repro.sim.units",
    "repro.core.units",
)

#: Hot-path classes that must declare ``__slots__`` (directly or via
#: ``@dataclass(slots=True)``): one instance per packet / event / flow /
#: page transaction, so a stray ``__dict__`` costs real memory and
#: dispatch-loop speed (SIM004).  Maps module name -> required classes.
SLOTS_MANIFEST: dict[str, tuple[str, ...]] = {
    "repro.sim.events": ("Event", "EventQueue"),
    "repro.net.packet": ("Packet",),
    "repro.net.fluid": ("FluidFlow",),
    "repro.net.nic": ("Flow", "_Message"),
    "repro.net.reliability": ("FlowReliability", "_Segment"),
    "repro.ssd.transactions": ("PageTransaction",),
    "repro.ssd.controller": ("CompletionEntry", "_Inflight"),
}
