"""Manifests consumed by the determinism linter (:mod:`repro.analysis.simlint`).

Centralising *which* packages are simulation code and *which* classes
sit on the per-event hot path keeps the lint rules data-driven: adding a
new hot-path type (or a new simulation package) means editing a tuple
here, not a rule implementation.
"""

from __future__ import annotations

#: Packages whose modules run *inside* the simulated clock.  Wall-clock
#: reads (SIM001), out-of-band randomness (SIM002), unordered iteration
#: (SIM003), and swallowed exceptions (SIM005) in these packages can
#: silently break the bit-identical-replay guarantee the golden-trace
#: and parallel==serial tests rely on.
SIM_PACKAGES: tuple[str, ...] = (
    "repro.sim",
    "repro.net",
    "repro.ssd",
    "repro.nvme",
    "repro.fabric",
    "repro.core",
    "repro.workloads",
    "repro.faults",
)

#: Packages where randomness is still required to flow through
#: :mod:`repro.sim.rng` even though they run outside the simulated clock
#: (their draws feed deterministic experiment results).
RNG_EXTRA_PACKAGES: tuple[str, ...] = (
    "repro.ml",
    "repro.experiments",
)

#: Modules allowed to touch ``numpy.random`` constructors directly —
#: the single chokepoint every other module must import from.
RNG_EXEMPT_MODULES: tuple[str, ...] = ("repro.sim.rng",)

#: Components with an *owner*: the whole-program purity pass (SIM202,
#: :mod:`repro.analysis.purity`) flags a dispatch-reachable callback
#: that stores directly into an attribute of a foreign instance of one
#: of these classes.  Cross-component effects must go through a method
#: call (the documented API) or through ``Simulator.schedule`` so the
#: golden-trace replay contract stays auditable at call boundaries.
#:
#: Each class maps to its **owner domain** — the shard-ownership label
#: the effect pass (:mod:`repro.analysis.effects` /
#: :mod:`repro.analysis.shards`, SIM301–SIM304) uses to decide whether
#: a state effect crosses a future shard boundary.  Membership tests
#: (``qualname in COMPONENT_CLASSES``) keep working as before.
COMPONENT_CLASSES: dict[str, str] = {
    "repro.sim.engine.Simulator": "engine",
    "repro.net.link.Link": "link",
    "repro.net.switch.Switch": "switch",
    "repro.net.nic.NIC": "nic",
    "repro.net.nic.Flow": "flow",
    "repro.net.reliability.FlowReliability": "flow",
    "repro.net.dcqcn.DCQCNRateControl": "nic",
    "repro.net.fluid.FluidDomain": "fluid",
    "repro.net.fluid.FluidFlow": "fluid",
    "repro.ssd.flash.FlashBackend": "ssd",
    "repro.ssd.controller.SSDController": "ssd",
    "repro.nvme.wrr.TokenWRR": "nvme",
    "repro.fabric.initiator.Initiator": "endpoint",
    "repro.fabric.target.Target": "endpoint",
}

#: Zero-lookahead colocation: ``SHARD_REACH[d]`` is the set of owner
#: domains that, under the ROADMAP sharding plan (per-pod / per-switch
#: spatial shards with conservative lookahead = link propagation
#: delay), are *guaranteed co-resident* with a domain-``d`` component —
#: so an event callback rooted in ``d`` may touch their state with any
#: (even zero) delay.  Everything else is on the far side of a wire:
#: a schedule whose callback touches a non-colocated domain must carry
#: a minimum delay provably >= the connecting link's propagation delay
#: (SIM302), because that delay is exactly the lookahead that makes the
#: conservative parallel execution safe.
#:
#: The matrix is asymmetric on purpose: a ``Link``'s transmit side
#: (queue, serialization) lives on the *sender's* shard, so nic/flow/
#: switch/endpoint domains reach "their" links freely, while a link
#: reaching a device domain models the delivery hop — the one crossing
#: that must be delayed by propagation.  ``engine`` (the per-shard
#: event loop) and the coarse-clock ``fluid`` solver are infrastructure
#: co-resident with every shard's clock.
_HOST_SIDE = frozenset(
    {"engine", "nic", "flow", "endpoint", "ssd", "nvme", "link", "fluid"}
)
SHARD_REACH: dict[str, frozenset[str]] = {
    "engine": frozenset(COMPONENT_CLASSES.values()),
    "nic": _HOST_SIDE,
    "flow": _HOST_SIDE,
    "endpoint": _HOST_SIDE,
    "ssd": _HOST_SIDE,
    "nvme": _HOST_SIDE,
    "switch": frozenset({"engine", "switch", "link", "fluid"}),
    "link": frozenset({"engine", "link", "fluid"}),
    "fluid": frozenset({"engine", "fluid", "link"}),
}

#: Modules exempt from the unit-mixing rules (SIM101/SIM104): they
#: *define* the conversions, so units legitimately meet there.
UNITS_EXEMPT_MODULES: tuple[str, ...] = (
    "repro.sim.units",
    "repro.core.units",
)

#: Packages whose state ends up inside a checkpoint payload: the
#: simulation packages plus the experiment drivers that build and own
#: `Simulator` instances.  The snapshot-safety rules (SIM401–SIM404,
#: :mod:`repro.analysis.snapshots`) apply here; everything else (the
#: analysis tooling itself, profiling micro-benchmarks) never rides in
#: a ``{sim, world, counters}`` pickle and is out of scope.
CHECKPOINT_PACKAGES: tuple[str, ...] = SIM_PACKAGES + ("repro.experiments",)

#: Modules exempt from the snapshot-safety rules because they *are* the
#: checkpoint machinery: the custom pickler/reducers and the registered
#: counter substrate legitimately keep module-level registries
#: (``SerialCounter._REGISTRY``) that the checkpoint explicitly
#: serializes out of band.
SNAPSHOT_EXEMPT_MODULES: tuple[str, ...] = (
    "repro.sim.serial",
    "repro.sim.checkpoint",
)

#: Heap-reachable classes *beyond* :data:`COMPONENT_CLASSES` /
#: :data:`SLOTS_MANIFEST`: their bound methods sit on the event heap
#: (schedule targets / batch handlers), so the checkpoint pickler must
#: be able to re-bind them, and SIM403 diffs the *computed* census
#: (owners of dispatch-seeded callbacks) against this declared set.  A
#: new class scheduling its own methods must be added here — the diff
#: failing is the point: it forces a human to confirm the class
#: round-trips through ``repro.sim.checkpoint``.
HEAP_EXTRA_CLASSES: frozenset[str] = frozenset(
    {
        "repro.experiments.clos_scale._ForegroundSource",
        "repro.experiments.dynamic._SRCAdjuster",
        "repro.faults.inject.FaultInjector",
        "repro.net.dcqcn.RateTable",
        "repro.nvme.block_sched.BlockLayerThrottle",
    }
)

#: Classes allowed to define ``__reduce__``/``__getstate__`` despite
#: the custom checkpoint pickler: their reducers are *part of* the
#: checkpoint contract (``_HandledMark`` pickles by module reference to
#: preserve sentinel identity; ``SerialCounter`` pickles by registry
#: name).  Any other heap-reachable class defining pickle hooks is
#: SIM403 drift — ``_CheckpointPickler`` dispatches on slots and
#: reducer_override, so an ad-hoc ``__getstate__`` would be silently
#: bypassed for `Simulator` internals and silently *honoured* for
#: everything else, diverging from what the author tested.
REDUCER_SANCTIONED: frozenset[str] = frozenset(
    {
        "repro.sim.events._HandledMark",
        "repro.sim.serial.SerialCounter",
    }
)

#: Hot-path classes that must declare ``__slots__`` (directly or via
#: ``@dataclass(slots=True)``): one instance per packet / event / flow /
#: page transaction, so a stray ``__dict__`` costs real memory and
#: dispatch-loop speed (SIM004).  Maps module name -> required classes.
SLOTS_MANIFEST: dict[str, tuple[str, ...]] = {
    "repro.sim.events": ("Event", "EventQueue"),
    "repro.sim.serial": ("SerialCounter",),
    "repro.net.packet": ("Packet",),
    "repro.net.fluid": ("FluidFlow",),
    "repro.net.nic": ("Flow", "_Message", "_FlowRateFan"),
    "repro.net.reliability": ("FlowReliability", "_Segment"),
    "repro.ssd.transactions": ("PageTransaction",),
    "repro.ssd.controller": ("CompletionEntry", "_Inflight", "_GCJob"),
}
