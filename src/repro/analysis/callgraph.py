"""Project-wide symbol table and call graph for the whole-program linter.

The per-file rules of :mod:`repro.analysis.simlint` are syntactic; the
units (:mod:`repro.analysis.units`) and purity
(:mod:`repro.analysis.purity`) passes need to reason *across* modules:
which function does ``self._finish_cb`` point at, what class is
``nic.link``, which callbacks can the dispatch loop of
:class:`repro.sim.engine.Simulator` ever invoke.  This module builds
that substrate with nothing but :mod:`ast`:

* :class:`ProjectIndex` — every module's imports, classes (with
  attribute types collected from ``__init__`` assignments and
  annotations), functions, parameter/return units;
* :class:`TypeEnv` / :func:`ProjectIndex.type_of_expr` — a lightweight
  forward type inference for locals (``nic = self.nic`` ⇒ ``NIC``),
  enough to resolve method calls and component ownership;
* :class:`CallGraph` — direct call edges, function-reference edges
  (``on_done=self._finish`` escaping into another call), and the
  scheduler indirection: ``sim.schedule(delay, callback, *args)``
  records ``callback``'s resolved target, and the set of all such
  targets seeds dispatch-loop reachability.

Everything here is best-effort static resolution: an unresolvable call
contributes no edge, an unresolvable type is ``None``.  The checkers
built on top only flag *known-known* conflicts, so partial knowledge
degrades to silence, not noise.
"""

from __future__ import annotations

import ast
import hashlib
import pickle
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.simlint import module_name_of
from repro.core.units import ALIAS_UNITS, suffix_unit

__all__ = [
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ParamInfo",
    "ProjectIndex",
    "ScheduleSite",
    "TypeEnv",
    "annotation_to_dotted",
    "annotation_to_unit",
]

#: Method names treated as the scheduler indirection.  The callback
#: argument position is 1 for all five (``schedule(delay, cb, *args)``,
#: ``schedule_at(time, cb, *args)``, their handle-free ``_anon`` twins,
#: and ``schedule_recurring_anon(interval, cb, *, until_ns)``) —
#: anonymous events dispatch exactly like handled ones, so their
#: callbacks are SIM2xx entry points too.
SCHEDULE_METHODS: frozenset[str] = frozenset(
    {
        "schedule",
        "schedule_at",
        "schedule_anon",
        "schedule_at_anon",
        "schedule_recurring_anon",
    }
)

#: ``register_batch(callback, batch_callback)``: both arguments are
#: dispatch entry points — the run loop calls ``batch_callback`` with a
#: coalesced args list whenever consecutive anonymous events share the
#: timestamp and ``callback``, and falls back to ``callback`` otherwise.
BATCH_REGISTER_METHODS: frozenset[str] = frozenset({"register_batch"})

#: Edge kinds.  ``call``/``ref`` are ordinary synchronous reach;
#: ``protocol``/``duck`` are structural dispatch through a Protocol
#: attribute or a getattr-wired method (the opaque far side of a
#: component boundary); ``wired`` is a call through a callback
#: attribute some *other* component registered on the receiver
#: (``link.on_depart = self._hook`` — registration asserts shared
#: memory, so the hop is shard-local); ``sched`` is the engine-mediated
#: channel (schedule targets, batch registration, inlined heappush).
#: Everything except ``sched`` runs within the caller's event, so the
#: effect pass propagates summaries over exactly the non-``sched``
#: edges.
EDGE_KINDS: frozenset[str] = frozenset(
    {"call", "ref", "protocol", "duck", "wired", "sched"}
)

_CACHE_VERSION = 1


# ---------------------------------------------------------------------------
# annotation helpers
# ---------------------------------------------------------------------------

def _strip_optional(node: ast.expr) -> ast.expr:
    """``X | None`` / ``Optional[X]`` -> ``X`` (one level)."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left, right = node.left, node.right
        if isinstance(right, ast.Constant) and right.value is None:
            return _strip_optional(left)
        if isinstance(left, ast.Constant) and left.value is None:
            return _strip_optional(right)
        return node
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if base_name == "Optional":
            return _strip_optional(node.slice)
    return node


def _parse_string_annotation(node: ast.expr) -> ast.expr:
    """Quoted annotations (``"NIC"``) -> the expression they contain."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return node
    return node


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` chains as a string, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def annotation_to_dotted(node: ast.expr | None) -> str | None:
    """The dotted *type* name an annotation refers to, or None.

    Containers (``dict[...]``, ``list[...]``) and unit aliases resolve
    to None — they are not component classes.
    """
    if node is None:
        return None
    node = _strip_optional(_parse_string_annotation(node))
    if isinstance(node, ast.Subscript):
        return None
    name = _dotted(node)
    if name is None:
        return None
    if name.split(".")[-1] in ALIAS_UNITS:
        return None
    return name


def annotation_to_unit(node: ast.expr | None) -> str | None:
    """The unit a signature annotation declares, or None.

    Recognises the :mod:`repro.core.units` aliases by name —
    ``Nanoseconds``, ``delay: "Bytes"``, ``Nanoseconds | None`` all map
    to their unit string.
    """
    if node is None:
        return None
    node = _strip_optional(_parse_string_annotation(node))
    name = _dotted(node)
    if name is None:
        return None
    return ALIAS_UNITS.get(name.split(".")[-1])


# ---------------------------------------------------------------------------
# symbol table
# ---------------------------------------------------------------------------

@dataclass
class ParamInfo:
    """One formal parameter of a project function."""

    name: str
    annotation: str | None  # raw dotted type name (unresolved)
    unit: str | None  # from an alias annotation, else the name suffix

    @staticmethod
    def from_arg(arg: ast.arg) -> "ParamInfo":
        unit = annotation_to_unit(arg.annotation)
        if unit is None:
            unit = suffix_unit(arg.arg)
        return ParamInfo(
            name=arg.arg,
            annotation=annotation_to_dotted(arg.annotation),
            unit=unit,
        )


@dataclass
class FunctionInfo:
    """One top-level function or method."""

    qualname: str
    module: str
    name: str
    cls: str | None  # owning class qualname, None for module-level
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: list[ParamInfo]
    is_method: bool
    return_annotation: str | None
    return_unit: str | None  # declared alias, else the function-name suffix

    @property
    def call_params(self) -> list[ParamInfo]:
        """Parameters as seen by a caller (``self`` stripped)."""
        if self.is_method and self.params and self.params[0].name in ("self", "cls"):
            return self.params[1:]
        return self.params


@dataclass
class ClassInfo:
    """One project class: methods, attribute types/units, aliases."""

    qualname: str
    module: str
    name: str
    bases: list[str]  # raw dotted base names (unresolved)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute -> raw dotted type name (from annotations, ``self.x =
    #: param``, ``self.x = Class(...)``).
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attribute -> unit, from explicit alias annotations only (suffix
    #: inference happens at the use site).
    attr_units: dict[str, str] = field(default_factory=dict)
    #: attribute -> method name (``self._finish_cb = self._finish``).
    method_aliases: dict[str, str] = field(default_factory=dict)
    is_protocol: bool = False
    is_dataclass: bool = False


@dataclass
class ModuleInfo:
    """Per-file symbols: parsed once, linked on demand."""

    name: str
    path: str
    tree: ast.Module
    source: str
    #: local alias -> dotted import target (``np`` -> ``numpy``,
    #: ``Link`` -> ``repro.net.link.Link``).
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative imports don't occur in this repo
                continue
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def _function_info(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    module: str,
    cls: ClassInfo | None,
) -> FunctionInfo:
    args = node.args
    all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    params = [ParamInfo.from_arg(a) for a in all_args]
    return_unit = annotation_to_unit(node.returns)
    if return_unit is None:
        return_unit = suffix_unit(node.name)
    owner = f"{module}.{cls.name}" if cls is not None else module
    return FunctionInfo(
        qualname=f"{owner}.{node.name}",
        module=module,
        name=node.name,
        cls=cls.qualname if cls is not None else None,
        node=node,
        params=params,
        is_method=cls is not None,
        return_annotation=annotation_to_dotted(node.returns),
        return_unit=return_unit,
    )


def _scan_class_attrs(info: ClassInfo) -> None:
    """Record ``self.x`` types/units and method aliases from all methods."""
    for fn in info.methods.values():
        params = {p.name: p for p in fn.params}
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    dotted = annotation_to_dotted(stmt.annotation)
                    if dotted is not None:
                        info.attr_types.setdefault(target.attr, dotted)
                    unit = annotation_to_unit(stmt.annotation)
                    if unit is not None:
                        info.attr_units.setdefault(target.attr, unit)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    value = stmt.value
                    if isinstance(value, ast.Name) and value.id in params:
                        ann = params[value.id].annotation
                        if ann is not None:
                            info.attr_types.setdefault(target.attr, ann)
                    elif isinstance(value, ast.Call):
                        callee = _dotted(value.func)
                        if callee is not None and callee[:1].isalpha():
                            info.attr_types.setdefault(target.attr, callee)
                    elif (
                        isinstance(value, ast.Attribute)
                        and isinstance(value.value, ast.Name)
                        and value.value.id == "self"
                        and value.attr in info.methods
                    ):
                        info.method_aliases.setdefault(target.attr, value.attr)


def _class_info(node: ast.ClassDef, module: str) -> ClassInfo:
    bases = [b for b in (_dotted(base) for base in node.bases) if b is not None]
    info = ClassInfo(
        qualname=f"{module}.{node.name}",
        module=module,
        name=node.name,
        bases=bases,
        is_protocol=any(b.split(".")[-1] == "Protocol" for b in bases),
        is_dataclass=any(
            (d := _dotted(deco.func if isinstance(deco, ast.Call) else deco))
            is not None
            and d.split(".")[-1] == "dataclass"
            for deco in node.decorator_list
        ),
    )
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = _function_info(stmt, module, info)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            # Class-level annotations: dataclass fields, typed class attrs.
            dotted = annotation_to_dotted(stmt.annotation)
            if dotted is not None:
                info.attr_types.setdefault(stmt.target.id, dotted)
            unit = annotation_to_unit(stmt.annotation)
            if unit is None:
                unit = suffix_unit(stmt.target.id)
            if unit is not None:
                info.attr_units.setdefault(stmt.target.id, unit)
    _scan_class_attrs(info)
    if info.is_dataclass and "__init__" not in info.methods:
        # Synthesise an __init__ signature from the field annotations so
        # constructor keyword arguments can be unit-checked.
        fields = [
            ParamInfo(name=name, annotation=info.attr_types.get(name),
                      unit=info.attr_units.get(name))
            for name, _ in _dataclass_fields(node)
        ]
        info.methods["__init__"] = FunctionInfo(
            qualname=f"{info.qualname}.__init__",
            module=module,
            name="__init__",
            cls=info.qualname,
            node=ast.FunctionDef(
                name="__init__",
                args=ast.arguments(
                    posonlyargs=[], args=[], kwonlyargs=[],
                    kw_defaults=[], defaults=[],
                ),
                body=[],
                decorator_list=[],
            ),
            params=[ParamInfo(name="self", annotation=None, unit=None), *fields],
            is_method=True,
            return_annotation=None,
            return_unit=None,
        )


    return info


def _dataclass_fields(node: ast.ClassDef) -> list[tuple[str, ast.expr]]:
    out: list[tuple[str, ast.expr]] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            out.append((stmt.target.id, stmt.annotation))
    return out


def parse_module(path: Path, source: str) -> ModuleInfo | None:
    """Parse one file into a :class:`ModuleInfo` (None if unattributed)."""
    module = module_name_of(path, source)
    if module is None:
        return None
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None  # reported as SIM999 by the per-file pass
    info = ModuleInfo(
        name=module, path=str(path), tree=tree, source=source,
        imports=_collect_imports(tree),
    )
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[stmt.name] = _function_info(stmt, module, None)
        elif isinstance(stmt, ast.ClassDef):
            info.classes[stmt.name] = _class_info(stmt, module)
    return info


# ---------------------------------------------------------------------------
# the index
# ---------------------------------------------------------------------------

class TypeEnv:
    """Mutable local-variable type environment for one function scope."""

    __slots__ = ("types",)

    def __init__(self) -> None:
        self.types: dict[str, str] = {}  # local name -> class qualname


class ProjectIndex:
    """All modules of a lint run, with cross-module resolution."""

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.modules: dict[str, ModuleInfo] = {m.name: m for m in modules}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        for mod in modules:
            for cls in mod.classes.values():
                self.classes[cls.qualname] = cls
                for fn in cls.methods.values():
                    self.functions[fn.qualname] = fn
            for fn in mod.functions.values():
                self.functions[fn.qualname] = fn

    # -- construction ---------------------------------------------------
    @staticmethod
    def build(files: list[tuple[Path, str]]) -> "ProjectIndex":
        infos = []
        for path, source in files:
            info = parse_module(path, source)
            if info is not None:
                infos.append(info)
        return ProjectIndex(infos)

    @staticmethod
    def build_cached(paths: list[Path], cache_path: Path | None) -> "ProjectIndex":
        """Build the index, reusing parsed modules from a pickle cache.

        Cache entries are keyed on the file's content hash, so a stale
        cache can only cost a re-parse, never produce stale analysis;
        cross-module linking always runs fresh.
        """
        cache: dict[str, tuple[str, ModuleInfo]] = {}
        if cache_path is not None and cache_path.exists():
            try:
                with cache_path.open("rb") as fh:
                    version, cache = pickle.load(fh)
                if version != _CACHE_VERSION:
                    cache = {}
            except Exception:  # corrupt cache: rebuild from scratch
                cache = {}
        infos: list[ModuleInfo] = []
        fresh: dict[str, tuple[str, ModuleInfo]] = {}
        for path in paths:
            source = path.read_text()
            digest = hashlib.sha256(source.encode()).hexdigest()
            key = str(path)
            hit = cache.get(key)
            if hit is not None and hit[0] == digest:
                fresh[key] = hit
                infos.append(hit[1])
                continue
            info = parse_module(path, source)
            if info is not None:
                fresh[key] = (digest, info)
                infos.append(info)
        if cache_path is not None:
            try:
                cache_path.parent.mkdir(parents=True, exist_ok=True)
                with cache_path.open("wb") as fh:
                    pickle.dump((_CACHE_VERSION, fresh), fh)
            except OSError:
                pass  # caching is best-effort; the lint result is unaffected
        return ProjectIndex(infos)

    # -- resolution -----------------------------------------------------
    def resolve_dotted(self, module: str, dotted: str) -> str | None:
        """A name as written in ``module`` -> project qualname, or None."""
        mod = self.modules.get(module)
        parts = dotted.split(".")
        candidates = [dotted]
        if mod is not None:
            target = mod.imports.get(parts[0])
            if target is not None:
                candidates.insert(0, ".".join([target, *parts[1:]]))
        candidates.append(f"{module}.{dotted}")
        for cand in candidates:
            if cand in self.classes or cand in self.functions:
                return cand
        return None

    def class_for(self, module: str, dotted: str | None) -> ClassInfo | None:
        if dotted is None:
            return None
        qual = self.resolve_dotted(module, dotted)
        if qual is None:
            # Same-named class anywhere in the project (quoted annotations
            # of not-imported-at-runtime types, e.g. ``"NIC"``).
            tail = dotted.split(".")[-1]
            matches = sorted(
                q for q, c in self.classes.items() if c.name == tail
            )
            return self.classes[matches[0]] if len(matches) == 1 else None
        return self.classes.get(qual)

    def method_of(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """Method lookup through (single-inheritance) base classes."""
        seen: set[str] = set()
        current: ClassInfo | None = cls
        while current is not None and current.qualname not in seen:
            seen.add(current.qualname)
            fn = current.methods.get(name)
            if fn is not None:
                return fn
            current = next(
                (
                    base_info
                    for base in current.bases
                    if (base_info := self.class_for(current.module, base))
                    is not None
                ),
                None,
            )
        return None

    def attr_type(self, cls: ClassInfo, attr: str) -> ClassInfo | None:
        dotted = cls.attr_types.get(attr)
        if dotted is None:
            return None
        return self.class_for(cls.module, dotted)

    # -- expression typing ---------------------------------------------
    def type_of_expr(
        self,
        node: ast.expr,
        *,
        module: str,
        enclosing: ClassInfo | None,
        env: TypeEnv,
    ) -> ClassInfo | None:
        """Best-effort static type of an expression (None = unknown)."""
        if isinstance(node, ast.Name):
            if node.id == "self" and enclosing is not None:
                return enclosing
            local = env.types.get(node.id)
            if local is not None:
                return self.classes.get(local)
            return None
        if isinstance(node, ast.Attribute):
            base = self.type_of_expr(
                node.value, module=module, enclosing=enclosing, env=env
            )
            if base is not None:
                return self.attr_type(base, node.attr)
            # module-qualified class reference: repro.net.link.Link
            dotted = _dotted(node)
            if dotted is not None:
                qual = self.resolve_dotted(module, dotted)
                if qual is not None:
                    return self.classes.get(qual)
            return None
        if isinstance(node, ast.Call):
            fn = self.resolve_call(
                node, module=module, enclosing=enclosing, env=env
            )
            if fn is None:
                callee = _dotted(node.func)
                if callee is not None:
                    qual = self.resolve_dotted(module, callee)
                    if qual is not None and qual in self.classes:
                        return self.classes[qual]
                return None
            if fn.name == "__init__" and fn.cls is not None:
                return self.classes.get(fn.cls)
            return self.class_for(fn.module, fn.return_annotation)
        return None

    def resolve_call(
        self,
        node: ast.Call,
        *,
        module: str,
        enclosing: ClassInfo | None,
        env: TypeEnv,
    ) -> FunctionInfo | None:
        """The project function a call lands in, or None."""
        func = node.func
        if isinstance(func, ast.Name):
            qual = self.resolve_dotted(module, func.id)
            if qual is None:
                return None
            if qual in self.classes:
                cls = self.classes[qual]
                return self.method_of(cls, "__init__")
            return self.functions.get(qual)
        if isinstance(func, ast.Attribute):
            owner = self.type_of_expr(
                func.value, module=module, enclosing=enclosing, env=env
            )
            if owner is not None:
                return self.method_of(owner, func.attr)
            dotted = _dotted(func)
            if dotted is not None:
                qual = self.resolve_dotted(module, dotted)
                if qual is not None:
                    if qual in self.classes:
                        return self.method_of(self.classes[qual], "__init__")
                    return self.functions.get(qual)
        return None

    def resolve_function_reference(
        self,
        node: ast.expr,
        *,
        module: str,
        enclosing: ClassInfo | None,
        env: TypeEnv,
    ) -> FunctionInfo | None:
        """A bare function/method reference (not a call), or None.

        Handles ``self._finish``, cached-bound-method aliases
        (``self._finish_cb``), plain module functions, and
        ``obj.method`` on a statically-typed object.
        """
        if isinstance(node, ast.Name):
            qual = self.resolve_dotted(module, node.id)
            if qual is not None and qual in self.functions:
                return self.functions[qual]
            return None
        if isinstance(node, ast.Attribute):
            owner = self.type_of_expr(
                node.value, module=module, enclosing=enclosing, env=env
            )
            if owner is None:
                return None
            alias = owner.method_aliases.get(node.attr)
            name = alias if alias is not None else node.attr
            return self.method_of(owner, name)
        return None

    # -- local type environments ---------------------------------------
    def env_for_function(self, fn: FunctionInfo) -> TypeEnv:
        """Seed a type env from parameters, then one forward pass.

        Assignments are folded in statement order; branches are not
        merged (last write wins) — sufficient for the resolution the
        checkers need, silent where it is not.
        """
        env = TypeEnv()
        enclosing = self.classes.get(fn.cls) if fn.cls is not None else None
        for param in fn.params:
            if param.annotation is None:
                continue
            cls = self.class_for(fn.module, param.annotation)
            if cls is not None:
                env.types[param.name] = cls.qualname
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    inferred = self.type_of_expr(
                        stmt.value, module=fn.module, enclosing=enclosing, env=env
                    )
                    if inferred is not None:
                        env.types[target.id] = inferred.qualname
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                cls = self.class_for(fn.module, annotation_to_dotted(stmt.annotation))
                if cls is not None:
                    env.types[stmt.target.id] = cls.qualname
        return env


# ---------------------------------------------------------------------------
# the call graph
# ---------------------------------------------------------------------------

def _constant_getattr_name(value: ast.expr) -> str | None:
    """``getattr(obj, "method", ...)`` -> ``"method"``, else None."""
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "getattr"
        and len(value.args) >= 2
        and isinstance(value.args[1], ast.Constant)
        and isinstance(value.args[1].value, str)
    ):
        return value.args[1].value
    return None


@dataclass
class ScheduleSite:
    """One ``sim.schedule(...)`` / ``schedule_at(...)`` call site.

    ``kind`` is ``"schedule"`` for a named ``schedule*`` method call and
    ``"heappush"`` for the hot-path inlined form
    (``heappush(heap, (time, seq, callback, args))``).  For heappush
    sites ``delay`` is the relative part of the time expression when the
    push uses the canonical ``now + X`` shape, else None (absolute or
    opaque time).
    """

    caller: str  # qualname of the function containing the call
    node: ast.Call
    delay: ast.expr | None  # first argument (delay / absolute time)
    callback: ast.expr | None
    target: str | None  # resolved callback qualname, None if opaque
    kind: str = "schedule"


def _is_heappush(func: ast.expr) -> bool:
    """``heappush(...)`` / ``heapq.heappush(...)`` call heads."""
    if isinstance(func, ast.Name):
        return func.id == "heappush"
    return isinstance(func, ast.Attribute) and func.attr == "heappush"


def _is_now_expr(node: ast.expr) -> bool:
    """Expressions spelling the current simulated time."""
    if isinstance(node, ast.Attribute) and node.attr == "now":
        return True
    return isinstance(node, ast.Name) and node.id == "now"


def _heappush_delay(time_expr: ast.expr) -> ast.expr | None:
    """The relative delay of an inlined push, or None if absolute.

    Recognises the ``sim.now + delay`` / ``now + delay`` shape every
    inlined ``schedule_anon`` in the repo uses; anything else is an
    absolute timestamp whose distance from now is statically unknown.
    """
    if isinstance(time_expr, ast.BinOp) and isinstance(time_expr.op, ast.Add):
        if _is_now_expr(time_expr.left):
            return time_expr.right
        if _is_now_expr(time_expr.right):
            return time_expr.left
    return None


class CallGraph:
    """Call/reference/schedule edges over a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.edges: dict[str, set[str]] = {}
        #: Edges that run *within* the caller's event (every kind except
        #: ``sched``) — the propagation relation of the effect pass.
        self.sync_edges: dict[str, set[str]] = {}
        #: (caller, callee) pairs reached through structural dispatch
        #: (Protocol receivers, getattr-wired duck methods): the opaque
        #: far side of a component boundary, i.e. potentially remote.
        self.remote_pairs: set[tuple[str, str]] = set()
        #: (caller, callee) pairs through registered callback attributes
        #: — shard-local by construction (registration shares memory).
        self.wired_pairs: set[tuple[str, str]] = set()
        #: (class qualname, attribute) -> functions some other code
        #: wired into that callback attribute.
        self.wirings: dict[tuple[str, str], set[str]] = {}
        self.schedule_sites: list[ScheduleSite] = []
        #: ``Simulator.register_batch`` call sites, as ``kind="register"``
        #: :class:`ScheduleSite` records (delay is always None).  Kept
        #: separate from :attr:`schedule_sites` so the delay-sensitive
        #: consumers (SIM203 zero-delay, SIM302 lookahead) are untouched;
        #: the snapshot-safety pass (SIM401) walks both lists.
        self.register_sites: list[ScheduleSite] = []
        self.seeds: set[str] = set()
        #: (class qualname, attribute name) -> duck method name, for
        #: attributes wired as ``self.x = getattr(obj, "method", None)``.
        self._getattr_attrs: dict[tuple[str, str], str] = {}
        #: method qualname -> {param name: (sink class qualname, attr)}
        #: for registration helpers (``def add(self, cb): self.cbs.append(cb)``).
        self._param_sinks: dict[str, dict[str, tuple[str, str]]] = {}
        self._build()

    # -- construction ---------------------------------------------------
    def _build(self) -> None:
        functions = sorted(self.index.functions.values(), key=lambda f: f.qualname)
        for fn in functions:
            self._collect_getattr_attrs(fn)
            self._collect_param_sinks(fn)
        for fn in functions:
            self._collect_wirings(fn)
        for fn in functions:
            self._scan_function(fn)

    def _collect_getattr_attrs(self, fn: FunctionInfo) -> None:
        """Record ``self.x = getattr(obj, "method", ...)`` wirings.

        The batched link fan-out stores a destination's optional
        ``receive_batch`` this way; calling through the stored attribute
        later is a dynamic dispatch the type-driven resolver cannot see,
        so the attribute's constant method name is kept for duck-edge
        expansion in :meth:`_scan_function`.
        """
        if fn.cls is None:
            return
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            method = _constant_getattr_name(value)
            if method is None:
                continue
            for tgt in targets:
                if (
                    isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                ):
                    self._getattr_attrs[(fn.cls, tgt.attr)] = method

    def _add_edge(self, caller: str, callee: str, kind: str = "call") -> None:
        self.edges.setdefault(caller, set()).add(callee)
        if kind in ("protocol", "duck"):
            self.remote_pairs.add((caller, callee))
        elif kind == "wired":
            self.wired_pairs.add((caller, callee))
        if kind != "sched":
            self.sync_edges.setdefault(caller, set()).add(callee)

    # -- callback-wiring escape analysis --------------------------------
    def _sink_of_target(
        self, fn: FunctionInfo, target: ast.expr
    ) -> tuple[str, str] | None:
        """``self.attr`` / ``self.other.attr`` store target -> (class, attr)."""
        if not (isinstance(target, ast.Attribute) and fn.cls is not None):
            return None
        base = target.value
        if isinstance(base, ast.Name) and base.id == "self":
            return (fn.cls, target.attr)
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            owner = self.index.classes.get(fn.cls)
            hop = self.index.attr_type(owner, base.attr) if owner else None
            if hop is not None:
                return (hop.qualname, target.attr)
        return None

    def _collect_param_sinks(self, fn: FunctionInfo) -> None:
        """Record registration helpers: a parameter flowing into a
        ``self``-rooted attribute (``self.listeners.append(cb)`` /
        ``self.cb = cb``) makes the method a wiring point — any function
        reference passed to it at a call site lands in that attribute.
        """
        if fn.cls is None:
            return
        params = {p.name for p in fn.call_params}
        sinks: dict[str, tuple[str, str]] = {}
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.Assign):
                if not (
                    isinstance(stmt.value, ast.Name) and stmt.value.id in params
                ):
                    continue
                for target in stmt.targets:
                    sink = self._sink_of_target(fn, target)
                    if sink is not None:
                        sinks[stmt.value.id] = sink
            elif (
                isinstance(stmt, ast.Call)
                and isinstance(stmt.func, ast.Attribute)
                and stmt.func.attr in ("append", "add")
                and len(stmt.args) == 1
                and isinstance(stmt.args[0], ast.Name)
                and stmt.args[0].id in params
            ):
                sink = self._sink_of_target(fn, stmt.func.value)
                if sink is not None:
                    sinks[stmt.args[0].id] = sink
        if sinks:
            self._param_sinks[fn.qualname] = sinks

    def _record_wiring(
        self,
        fn: FunctionInfo,
        sink: tuple[str, str],
        value: ast.expr,
        enclosing: ClassInfo | None,
        env: TypeEnv,
    ) -> None:
        ref = self.index.resolve_function_reference(
            value, module=fn.module, enclosing=enclosing, env=env
        )
        if ref is None and isinstance(value, ast.Call):
            # ``link.on_depart = self._make_hook(port)``: the factory's
            # closure is the callback; its effects live in the factory's
            # body (nested defs are walked with it), so wiring the
            # factory itself keeps the summary sound.
            ref = self.index.resolve_call(
                value, module=fn.module, enclosing=enclosing, env=env
            )
            if ref is not None and ref.name == "__init__":
                ref = None  # plain object construction, not a callback factory
        if ref is not None:
            self.wirings.setdefault(sink, set()).add(ref.qualname)

    def _collect_wirings(self, fn: FunctionInfo) -> None:
        """Record every function escaping into a callback attribute.

        Three shapes: a direct store (``nic.endpoint = self._on_message``),
        a container registration (``nic.listeners.append(self._retry)``),
        and a call to a registration helper found by
        :meth:`_collect_param_sinks` (``target.add_rate_listener(cb)``).
        """
        index = self.index
        enclosing = index.classes.get(fn.cls) if fn.cls is not None else None
        env = index.env_for_function(fn)

        def sink_for(target: ast.expr) -> tuple[str, str] | None:
            if not isinstance(target, ast.Attribute):
                return None
            owner = index.type_of_expr(
                target.value, module=fn.module, enclosing=enclosing, env=env
            )
            if owner is None:
                return None
            return (owner.qualname, target.attr)

        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    sink = sink_for(target)
                    if sink is not None:
                        self._record_wiring(fn, sink, stmt.value, enclosing, env)
            elif isinstance(stmt, ast.Call):
                func = stmt.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("append", "add")
                    and len(stmt.args) == 1
                ):
                    sink = sink_for(func.value)
                    if sink is not None:
                        self._record_wiring(
                            fn, sink, stmt.args[0], enclosing, env
                        )
                    continue
                resolved = index.resolve_call(
                    stmt, module=fn.module, enclosing=enclosing, env=env
                )
                if resolved is None:
                    continue
                sinks = self._param_sinks.get(resolved.qualname)
                if not sinks:
                    continue
                callee_params = resolved.call_params
                for i, arg in enumerate(stmt.args):
                    if i < len(callee_params) and callee_params[i].name in sinks:
                        self._record_wiring(
                            fn, sinks[callee_params[i].name], arg, enclosing, env
                        )
                for kw in stmt.keywords:
                    if kw.arg is not None and kw.arg in sinks:
                        self._record_wiring(
                            fn, sinks[kw.arg], kw.value, enclosing, env
                        )

    def _scan_function(self, fn: FunctionInfo) -> None:
        index = self.index
        enclosing = index.classes.get(fn.cls) if fn.cls is not None else None
        env = index.env_for_function(fn)
        nested = {
            stmt.name
            for stmt in ast.walk(fn.node)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt is not fn.node
        }
        # Local aliases of getattr-wired callables (``cb = self._attr``):
        # a call through the alias duck-dispatches like the attribute.
        duck_attrs = self._getattr_attrs
        duck_aliases: dict[str, str] = {}
        if fn.cls is not None and duck_attrs:
            for stmt in ast.walk(fn.node):
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    tgt, val = stmt.targets[0], stmt.value
                    if (
                        isinstance(tgt, ast.Name)
                        and isinstance(val, ast.Attribute)
                        and isinstance(val.value, ast.Name)
                        and val.value.id == "self"
                    ):
                        method = duck_attrs.get((fn.cls, val.attr))
                        if method is not None:
                            duck_aliases[tgt.id] = method
        # Local aliases and loop variables bound to wired callback
        # attributes (``on_depart = self.on_depart`` / ``for cb in
        # self.listeners``): a call through them dispatches the wiring.
        wired_aliases: dict[str, tuple[str, str]] = {}
        if fn.cls is not None and self.wirings:
            for stmt in ast.walk(fn.node):
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    tgt, val = stmt.targets[0], stmt.value
                    if isinstance(tgt, ast.Name) and isinstance(val, ast.Attribute):
                        sink = self._self_attr_sink(fn, val)
                        if sink is not None and sink in self.wirings:
                            wired_aliases[tgt.id] = sink
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    if isinstance(stmt.target, ast.Name) and isinstance(
                        stmt.iter, ast.Attribute
                    ):
                        sink = self._self_attr_sink(fn, stmt.iter)
                        if sink is not None and sink in self.wirings:
                            wired_aliases[stmt.target.id] = sink
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in duck_aliases:
                self._duck_edges(fn, duck_aliases[func.id])
            elif (
                fn.cls is not None
                and isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and (fn.cls, func.attr) in duck_attrs
            ):
                self._duck_edges(fn, duck_attrs[(fn.cls, func.attr)])
            if isinstance(func, ast.Name) and func.id in wired_aliases:
                self._wired_edges(fn, wired_aliases[func.id])
            elif isinstance(func, ast.Attribute):
                sink = self._self_attr_sink(fn, func)
                if sink is not None and sink in self.wirings:
                    self._wired_edges(fn, sink)
            if _is_heappush(func):
                self._record_heappush(fn, node, enclosing, env)
                continue
            is_schedule = (
                isinstance(func, ast.Attribute) and func.attr in SCHEDULE_METHODS
            )
            if is_schedule:
                self._record_schedule(fn, node, enclosing, env, nested)
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in BATCH_REGISTER_METHODS
            ):
                self._seed_batch_register(fn, node, enclosing, env)
            resolved = index.resolve_call(
                node, module=fn.module, enclosing=enclosing, env=env
            )
            if resolved is not None:
                self._add_edge(fn.qualname, resolved.qualname)
                owner = (
                    index.classes.get(resolved.cls)
                    if resolved.cls is not None
                    else None
                )
                if owner is not None and owner.is_protocol:
                    # The call resolved to a Protocol *stub*: fan out to
                    # the concrete implementations, or structural typing
                    # would hide them from dispatch reachability.
                    self._implementer_edges(fn, owner, resolved.name)
            elif isinstance(func, ast.Attribute):
                self._protocol_edges(fn, func, enclosing, env)
            if is_schedule or (
                isinstance(func, ast.Attribute)
                and func.attr in BATCH_REGISTER_METHODS
            ):
                # Their callback arguments are engine-mediated, recorded
                # as ``sched`` edges above — not synchronous escapes.
                continue
            # Function references escaping as arguments (callbacks wired
            # through plain calls: ``on_done=self._finish``).
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                if isinstance(arg, (ast.Attribute, ast.Name)) and not (
                    isinstance(arg, ast.Name) and arg.id in nested
                ):
                    ref = index.resolve_function_reference(
                        arg, module=fn.module, enclosing=enclosing, env=env
                    )
                    if ref is not None:
                        self._add_edge(fn.qualname, ref.qualname, kind="ref")

    def _self_attr_sink(
        self, fn: FunctionInfo, node: ast.Attribute
    ) -> tuple[str, str] | None:
        """``self.attr`` -> (own class, attr), for wiring lookups."""
        if (
            fn.cls is not None
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return (fn.cls, node.attr)
        return None

    def _wired_edges(self, fn: FunctionInfo, sink: tuple[str, str]) -> None:
        for target in sorted(self.wirings.get(sink, ())):
            self._add_edge(fn.qualname, target, kind="wired")

    def _record_heappush(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        enclosing: ClassInfo | None,
        env: TypeEnv,
    ) -> None:
        """An inlined ``heappush(heap, (time, seq, callback, args))``.

        The hot paths (``Link.send``, ``Flow.pump``) bypass the
        ``schedule*`` methods and push event tuples directly; without
        this, their callbacks (``_finish``, ``_deliver``) look dead to
        every dispatch-reachability consumer.
        """
        if len(node.args) < 2 or not isinstance(node.args[1], ast.Tuple):
            return
        elts = node.args[1].elts
        if len(elts) < 3:
            return
        callback = elts[2]
        target: str | None = None
        ref = self.index.resolve_function_reference(
            callback, module=fn.module, enclosing=enclosing, env=env
        )
        if ref is not None:
            target = ref.qualname
            self.seeds.add(target)
            self._add_edge(fn.qualname, target, kind="sched")
        self.schedule_sites.append(
            ScheduleSite(
                caller=fn.qualname,
                node=node,
                delay=_heappush_delay(elts[0]),
                callback=callback,
                target=target,
                kind="heappush",
            )
        )

    def _implementer_edges(
        self, fn: FunctionInfo, protocol: ClassInfo, method: str
    ) -> None:
        """Fan out from a Protocol method stub to its implementations."""
        for cls in self.index.classes.values():
            if cls.is_protocol or method not in cls.methods:
                continue
            if all(m in cls.methods for m in protocol.methods):
                self._add_edge(
                    fn.qualname, cls.methods[method].qualname, kind="protocol"
                )

    def _protocol_edges(
        self,
        fn: FunctionInfo,
        func: ast.Attribute,
        enclosing: ClassInfo | None,
        env: TypeEnv,
    ) -> None:
        """Duck-dispatch through Protocol-typed receivers.

        ``link.dst.receive(...)`` with ``dst: Device`` (a Protocol) may
        land in any class implementing ``receive`` — add an edge to each
        so dispatch-reachability survives structural typing.
        """
        index = self.index
        owner = index.type_of_expr(
            func.value, module=fn.module, enclosing=enclosing, env=env
        )
        if owner is None or not owner.is_protocol:
            return
        if func.attr not in owner.methods:
            return
        self._implementer_edges(fn, owner, func.attr)

    def _record_schedule(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        enclosing: ClassInfo | None,
        env: TypeEnv,
        nested: set[str],
    ) -> None:
        args = node.args
        delay = args[0] if args else None
        callback = args[1] if len(args) > 1 else None
        target: str | None = None
        if callback is not None:
            ref = self.index.resolve_function_reference(
                callback, module=fn.module, enclosing=enclosing, env=env
            )
            if ref is not None:
                target = ref.qualname
                self.seeds.add(target)
                self._add_edge(fn.qualname, target, kind="sched")
            elif isinstance(callback, ast.Lambda):
                # The lambda body runs at dispatch: its call targets are
                # callbacks even though the enclosing function is not.
                self._seed_calls_within(callback.body, fn, enclosing, env)
            elif isinstance(callback, ast.Name) and callback.id in nested:
                for stmt in ast.walk(fn.node):
                    if (
                        isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and stmt.name == callback.id
                    ):
                        self._seed_calls_within(stmt, fn, enclosing, env)
                        break
        # Function references among the *callback arguments* (``schedule(
        # d, cb, on_done)``) dispatch with the callback: engine-mediated.
        for extra in [*args[2:], *[kw.value for kw in node.keywords]]:
            if isinstance(extra, (ast.Attribute, ast.Name)):
                ref = self.index.resolve_function_reference(
                    extra, module=fn.module, enclosing=enclosing, env=env
                )
                if ref is not None:
                    self.seeds.add(ref.qualname)
                    self._add_edge(fn.qualname, ref.qualname, kind="sched")
        self.schedule_sites.append(
            ScheduleSite(
                caller=fn.qualname, node=node, delay=delay,
                callback=callback, target=target,
            )
        )

    def _duck_edges(self, fn: FunctionInfo, method_name: str) -> None:
        """Edges to every concrete implementation of ``method_name``.

        Same blast radius as :meth:`_protocol_edges`, for dispatch
        through a getattr-wired attribute: any class providing the
        method may be the receiver.
        """
        for cls in self.index.classes.values():
            if cls.is_protocol:
                continue
            info = cls.methods.get(method_name)
            if info is not None:
                self._add_edge(fn.qualname, info.qualname, kind="duck")

    def _seed_batch_register(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        enclosing: ClassInfo | None,
        env: TypeEnv,
    ) -> None:
        """Seed both arguments of a ``register_batch`` call.

        The registering function (typically ``__init__``) is usually
        *not* dispatch-reachable itself, so without explicit seeding the
        batch form would look dead to the purity pass and escape the
        SIM2xx rules even though the run loop invokes it directly.
        """
        for arg in node.args[:2]:
            target: str | None = None
            ref = self.index.resolve_function_reference(
                arg, module=fn.module, enclosing=enclosing, env=env
            )
            if ref is not None:
                target = ref.qualname
                self.seeds.add(target)
                self._add_edge(fn.qualname, target, kind="sched")
            self.register_sites.append(
                ScheduleSite(
                    caller=fn.qualname, node=node, delay=None,
                    callback=arg, target=target, kind="register",
                )
            )

    def _seed_calls_within(
        self,
        body: ast.AST,
        fn: FunctionInfo,
        enclosing: ClassInfo | None,
        env: TypeEnv,
    ) -> None:
        for node in ast.walk(body):
            if isinstance(node, ast.Call):
                resolved = self.index.resolve_call(
                    node, module=fn.module, enclosing=enclosing, env=env
                )
                if resolved is not None:
                    self.seeds.add(resolved.qualname)
                    self._add_edge(fn.qualname, resolved.qualname, kind="sched")

    # -- queries --------------------------------------------------------
    def reachable_from_dispatch(self) -> frozenset[str]:
        """Functions the event loop can reach through scheduled callbacks."""
        seen: set[str] = set()
        stack = sorted(self.seeds)
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            stack.extend(sorted(self.edges.get(qual, set()) - seen))
        return frozenset(seen)
