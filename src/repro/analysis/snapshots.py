"""Snapshot-safety rules (SIM401–SIM404) over the project call graph.

PR 9 made checkpoint/restore load-bearing (resumable sweeps,
crash-resilient supervision, time-travel failure replay — DESIGN §11),
and its correctness rests on conventions the type system cannot see:
schedule sites must be closure-free, id streams must route through
:class:`repro.sim.serial.SerialCounter`, and no simulation state may
live outside the pickled ``{sim, world, counters}`` root set.  This
pass turns those conventions into machine-checked invariants, the same
way SIM3xx proved the DES shardable before sharding lands:

SIM401
    Every callback the event heap can hold must survive the checkpoint
    pickler.  ``_CheckpointPickler`` re-binds bound methods by
    ``__func__`` identity through the owner's MRO
    (:mod:`repro.sim.checkpoint`), so a *resolved* method reference is
    fine — but a lambda, a nested def (closure over locals), a
    ``types.MethodType``/``__get__`` construction (no MRO identity
    path), a factory returning a closure, or a ``functools.partial``
    whose captured arguments reach an unpicklable object (open file,
    generator, thread, lock/``Condition``) raises at ``save()`` — or
    worse, at restore.  Flagged at the ``schedule*`` / ``heappush`` /
    ``register_batch`` site that would put it on the heap.
SIM402
    Snapshot completeness: the checkpoint payload is exactly
    ``{sim, world, counters}``, so mutable state written from
    dispatch-reachable code that lives *outside* that root set —
    module-level globals, class attributes, mutable default-argument
    caches, raw ``itertools.count`` streams not registered as a
    :class:`~repro.sim.serial.SerialCounter` — silently resets (or
    stays stale) on restore.  Built on the PR 8 escape records
    (:class:`repro.analysis.effects.GlobalWrite`).
SIM403
    Manifest & reducer drift: the set of classes whose bound methods
    actually reach the event heap (owners of dispatch-seeded
    callbacks) is *computed* and diffed against the *declared*
    checkpoint manifest (:data:`~repro.analysis.manifest.COMPONENT_CLASSES`
    / :data:`~repro.analysis.manifest.SLOTS_MANIFEST` /
    :data:`~repro.analysis.manifest.HEAP_EXTRA_CLASSES`).  A census
    class (or a ``Simulator`` subclass) defining
    ``__getstate__``/``__reduce__`` outside
    :data:`~repro.analysis.manifest.REDUCER_SANCTIONED` is drift: the
    custom pickler slot-extracts ``Simulator`` (bypassing the hook)
    and pickles captured ``self`` objects normally (honouring it), so
    the restored heap could bind methods to objects the world no
    longer references.
SIM404
    Restore-order typestate over the checkpoint/supervise lifecycle:
    ``load`` lexically before ``save`` in the same driver body (clobber
    of the checkpoint being read), manual ``Simulator(...)``
    construction beside :func:`~repro.sim.checkpoint.resume_or_start`
    in the same path (the manual instance never adopts restored
    state — construct inside the ``build`` factory), direct
    ``snapshot_counters``/``restore_counters`` calls outside the
    checkpoint machinery, ``checkpoint.save`` from inside a
    dispatch-reachable callback (the in-flight event is not on the
    heap), and ``failure.json`` recipes consumed outside the replay
    entry points.

As everywhere in :mod:`repro.analysis`, only known-known conflicts
fire: unresolvable callbacks, opaque types, and unattributed modules
degrade to silence, not noise.  Findings are cached beside
``effects.json`` (``snapshots.json``), keyed by the same whole-project
content digest.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.analysis.callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    ProjectIndex,
)
from repro.analysis.effects import EffectMap, project_digest
from repro.analysis.manifest import (
    CHECKPOINT_PACKAGES,
    COMPONENT_CLASSES,
    HEAP_EXTRA_CLASSES,
    REDUCER_SANCTIONED,
    SLOTS_MANIFEST,
    SNAPSHOT_EXEMPT_MODULES,
)
from repro.analysis.shards import _Emitters
from repro.analysis.simlint import Violation

__all__ = [
    "SNAPSHOT_RULES",
    "check_snapshots",
    "load_or_compute_snapshots",
    "snapshots_cache_path",
]

SNAPSHOT_RULES: dict[str, str] = {
    "SIM401": (
        "schedule-site callbacks must survive the checkpoint pickler "
        "(no lambdas, closures, or unpicklable captures)"
    ),
    "SIM402": (
        "no dispatch-reachable writes to state outside the "
        "{sim, world, counters} checkpoint root set"
    ),
    "SIM403": (
        "heap-reachable classes must be declared in the checkpoint "
        "manifest and stay reducer-clean"
    ),
    "SIM404": (
        "checkpoint lifecycle order: no load-before-save, no manual "
        "Simulator beside resume_or_start, recipes only in replay paths"
    ),
}

#: Version 1: initial SIM401–SIM404 findings cache.
_SNAPSHOTS_VERSION = 1

#: Constructors whose result can never ride in a checkpoint pickle.
_UNPICKLABLE_CTORS: dict[str, str] = {
    "open": "an open file",
    "Thread": "a thread",
    "Lock": "a lock",
    "RLock": "a lock",
    "Condition": "a Condition",
    "Event": "a threading event",
    "Semaphore": "a semaphore",
    "BoundedSemaphore": "a semaphore",
    "Popen": "a subprocess handle",
    "socket": "a socket",
}

_REDUCER_HOOKS = (
    "__getstate__",
    "__setstate__",
    "__reduce__",
    "__reduce_ex__",
    "__getnewargs__",
)

_SIMULATOR_QUALNAME = "repro.sim.engine.Simulator"
_RESUME_API = frozenset({"repro.sim.checkpoint.resume_or_start"})
_COUNTER_API = frozenset(
    {"repro.sim.serial.snapshot_counters", "repro.sim.serial.restore_counters"}
)
_SAVE_API = frozenset({"repro.sim.checkpoint.save"})
_LOAD_API = frozenset({"repro.sim.checkpoint.load"})
#: Call heads that consume a path — a ``"failure.json"`` constant in
#: their argument tree is a recipe being read or built (a help string
#: mentioning the name is not).
_PATH_CONSUMERS = frozenset(
    {"open", "load", "loads", "read_text", "write_text", "Path", "joinpath"}
)


def _scoped(module: str) -> bool:
    if module in SNAPSHOT_EXEMPT_MODULES:
        return False
    return any(
        module == p or module.startswith(p + ".") for p in CHECKPOINT_PACKAGES
    )


def _anchor(line: int, col: int) -> ast.expr:
    node = ast.Expr(value=ast.Constant(value=None))
    node.lineno = line
    node.col_offset = col
    node.end_lineno = line
    return node


def _dotted_of(func: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
        return ".".join(reversed(parts))
    return None


def _api_target(
    index: ProjectIndex, module: str, node: ast.Call
) -> str | None:
    """Call-head dotted name with its first segment import-resolved.

    ``ck.load(...)`` with ``import repro.sim.checkpoint as ck`` ->
    ``repro.sim.checkpoint.load``; an unimported head resolves to
    itself, so project-external names stay recognisable by suffix.
    """
    dotted = _dotted_of(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    mod = index.modules.get(module)
    if mod is not None:
        head = mod.imports.get(head, head)
    return f"{head}.{rest}" if rest else head


def _nested_def_names(fn: FunctionInfo) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(fn.node):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not fn.node
        ):
            names.add(node.name)
    return names


# ---------------------------------------------------------------------------
# SIM401 — unpicklable heap reachability
# ---------------------------------------------------------------------------

def _local_unpicklables(index: ProjectIndex, fn: FunctionInfo) -> dict[str, str]:
    """Local names bound to provably unpicklable objects, in statement
    order (one Name-to-Name hop of propagation)."""
    found: dict[str, str] = {}
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        desc = _unpicklable_expr(index, fn, node.value, found)
        if desc is not None:
            found[target.id] = desc
    return found


def _unpicklable_expr(
    index: ProjectIndex,
    fn: FunctionInfo,
    expr: ast.expr,
    local_map: dict[str, str],
    nested: set[str] | None = None,
) -> str | None:
    """Why ``expr`` cannot ride in a checkpoint pickle, or None."""
    if isinstance(expr, ast.Lambda):
        return "a lambda"
    if isinstance(expr, ast.GeneratorExp):
        return "a generator"
    if isinstance(expr, ast.Name):
        if expr.id in local_map:
            return local_map[expr.id]
        if nested is not None and expr.id in nested:
            return "a nested function (closure)"
        return None
    if isinstance(expr, ast.Call):
        dotted = _dotted_of(expr.func)
        tail = dotted.rsplit(".", 1)[-1] if dotted else None
        if tail in _UNPICKLABLE_CTORS:
            return _UNPICKLABLE_CTORS[tail]
    return None


def _returns_closure(fn: FunctionInfo) -> bool:
    """The function's return value is a lambda or a nested def."""
    nested = _nested_def_names(fn)
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Lambda):
                return True
            if isinstance(node.value, ast.Name) and node.value.id in nested:
                return True
    return False


def _class_attr_lambda(cls: ClassInfo | None, attr: str) -> bool:
    """Some method stores ``self.<attr> = lambda ...``."""
    if cls is None:
        return False
    for method in cls.methods.values():
        for node in ast.walk(method.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Lambda
            ):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == attr
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return True
    return False


def _check_heap_picklability(
    index: ProjectIndex, graph: CallGraph, emitters: _Emitters
) -> None:
    site_kinds = {
        "schedule": "schedule",
        "heappush": "inlined heappush",
        "register": "register_batch",
    }
    for site in [*graph.schedule_sites, *graph.register_sites]:
        caller = index.functions.get(site.caller)
        if caller is None or not _scoped(caller.module):
            continue
        if site.callback is None or site.target is not None:
            continue  # resolved method references re-bind by MRO identity
        emit = emitters.for_module(caller.module)
        if emit is None:
            continue
        where = site_kinds.get(site.kind, site.kind)
        reason = _callback_reason(index, caller, site.callback)
        if reason is None:
            continue
        emit(
            "SIM401",
            site.callback,
            f"{reason} at a {where} site cannot be checkpointed: the "
            "pickler re-binds only bound methods with a __func__-identity "
            "path through the owner's MRO; use a bound method of a "
            "component (repro.sim.checkpoint reducer rules)",
        )


def _callback_reason(
    index: ProjectIndex, caller: FunctionInfo, cb: ast.expr
) -> str | None:
    nested = _nested_def_names(caller)
    enclosing = (
        index.classes.get(caller.cls) if caller.cls is not None else None
    )
    if isinstance(cb, ast.Lambda):
        return "lambda callback"
    if isinstance(cb, ast.Name) and cb.id in nested:
        return f"nested function {cb.id!r} (closure over locals)"
    if isinstance(cb, ast.Call):
        dotted = _dotted_of(cb.func) or ""
        tail = dotted.rsplit(".", 1)[-1]
        if tail == "partial":
            return _partial_reason(index, caller, cb, nested)
        if tail == "MethodType" or tail == "__get__":
            return "ad-hoc bound-method construction (no MRO identity path)"
        resolved = index.resolve_call(
            cb,
            module=caller.module,
            enclosing=enclosing,
            env=index.env_for_function(caller),
        )
        if (
            resolved is not None
            and resolved.name != "__init__"
            and _returns_closure(resolved)
        ):
            return f"callback factory {resolved.name!r} returning a closure"
        return None
    if (
        isinstance(cb, ast.Attribute)
        and isinstance(cb.value, ast.Name)
        and cb.value.id == "self"
        and _class_attr_lambda(enclosing, cb.attr)
    ):
        return f"attribute self.{cb.attr} holding a lambda"
    return None


def _partial_reason(
    index: ProjectIndex,
    caller: FunctionInfo,
    cb: ast.Call,
    nested: set[str],
) -> str | None:
    if not cb.args:
        return None
    inner = cb.args[0]
    if isinstance(inner, ast.Lambda):
        return "functools.partial over a lambda"
    if isinstance(inner, ast.Name) and inner.id in nested:
        return f"functools.partial over nested function {inner.id!r}"
    local_map = _local_unpicklables(index, caller)
    captured = [*cb.args[1:], *[kw.value for kw in cb.keywords]]
    for arg in captured:
        desc = _unpicklable_expr(index, caller, arg, local_map, nested)
        if desc is not None:
            return f"functools.partial capturing {desc}"
    return None


# ---------------------------------------------------------------------------
# SIM402 — snapshot completeness / state escape
# ---------------------------------------------------------------------------

_ESCAPE_MESSAGES = {
    "module-global": (
        "dispatch-reachable write to module-level {name!r}: it is outside "
        "the {{sim, world, counters}} checkpoint root set, so restore "
        "silently resets it; move it onto a component or the world"
    ),
    "class-attr": (
        "dispatch-reachable write to class attribute {name}: class "
        "attributes are outside the checkpoint root set and survive "
        "restore with stale values; use instance state"
    ),
    "default-arg": (
        "mutable default argument {name!r} is written by dispatch-reachable "
        "code: it accumulates state on the function object, invisible to "
        "the checkpoint; pass the container explicitly"
    ),
    "raw-counter": (
        "raw itertools.count stream {name!r} consumed from "
        "dispatch-reachable code cannot be snapshotted or rewound; "
        "register a repro.sim.serial.SerialCounter instead"
    ),
}


def _check_state_escape(
    index: ProjectIndex,
    graph: CallGraph,
    effects: EffectMap,
    emitters: _Emitters,
) -> None:
    reachable = graph.reachable_from_dispatch()
    for gw in effects.global_sites:
        fn = index.functions.get(gw.function)
        if fn is None or not _scoped(fn.module):
            continue
        if gw.function not in reachable:
            continue
        emit = emitters.for_module(fn.module)
        if emit is None:
            continue
        template = _ESCAPE_MESSAGES.get(gw.kind)
        if template is None:
            continue
        emit(
            "SIM402",
            _anchor(gw.line, gw.col),
            template.format(name=gw.name),
        )


# ---------------------------------------------------------------------------
# SIM403 — slots-manifest & reducer drift
# ---------------------------------------------------------------------------

def heap_class_census(index: ProjectIndex, graph: CallGraph) -> frozenset[str]:
    """Classes whose bound methods the dispatch loop can hold.

    Owners of every dispatch-seeded callback: schedule targets, batch
    handlers, extra callback arguments — the classes the checkpoint
    pickler must re-bind methods of.
    """
    owners: set[str] = set()
    for qual in graph.seeds:
        fn = index.functions.get(qual)
        if fn is not None and fn.cls is not None:
            owners.add(fn.cls)
    return frozenset(owners)


def _declared_manifest() -> frozenset[str]:
    slots = {
        f"{module}.{name}"
        for module, names in SLOTS_MANIFEST.items()
        for name in names
    }
    return frozenset(set(COMPONENT_CLASSES) | slots | HEAP_EXTRA_CLASSES)


def _class_def_node(
    index: ProjectIndex, cls: ClassInfo
) -> ast.ClassDef | None:
    mod = index.modules.get(cls.module)
    if mod is None:
        return None
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.ClassDef) and node.name == cls.name:
            return node
    return None


def _subclass_closure(
    index: ProjectIndex, roots: frozenset[str]
) -> frozenset[str]:
    family = set(roots)
    changed = True
    while changed:
        changed = False
        for cls in index.classes.values():
            if cls.qualname in family:
                continue
            for base in cls.bases:
                qual = index.resolve_dotted(cls.module, base)
                if qual in family:
                    family.add(cls.qualname)
                    changed = True
                    break
    return frozenset(family)


def _check_manifest_drift(
    index: ProjectIndex, graph: CallGraph, emitters: _Emitters
) -> None:
    census = heap_class_census(index, graph)
    declared = _declared_manifest()
    for qual in sorted(census):
        cls = index.classes.get(qual)
        if cls is None or not _scoped(cls.module):
            continue
        if qual in declared:
            continue
        node = _class_def_node(index, cls)
        emit = emitters.for_module(cls.module)
        if node is None or emit is None:
            continue
        emit(
            "SIM403",
            node,
            f"class {cls.name} owns heap-scheduled callbacks but is not "
            "declared in the checkpoint manifest (COMPONENT_CLASSES / "
            "SLOTS_MANIFEST / HEAP_EXTRA_CLASSES); declare it after "
            "confirming it round-trips through repro.sim.checkpoint",
        )
    # Reducer drift over the census plus every Simulator subclass (the
    # pickler slot-extracts Simulator instances, bypassing any hook).
    family = _subclass_closure(
        index, census | frozenset({_SIMULATOR_QUALNAME})
    )
    for qual in sorted(family):
        cls = index.classes.get(qual)
        if cls is None or qual in REDUCER_SANCTIONED:
            continue
        if cls.module in SNAPSHOT_EXEMPT_MODULES:
            continue
        for hook in _REDUCER_HOOKS:
            method = cls.methods.get(hook)
            if method is None:
                continue
            emit = emitters.for_module(cls.module)
            if emit is None:
                continue
            emit(
                "SIM403",
                method.node,
                f"heap-reachable class {cls.name} defines {hook}, which "
                "the checkpoint pickler bypasses for Simulator state and "
                "honours for captured instances — restored methods could "
                "bind to objects the world no longer references; drop the "
                "hook or add the class to REDUCER_SANCTIONED with a "
                "round-trip test",
            )


# ---------------------------------------------------------------------------
# SIM404 — restore-order typestate
# ---------------------------------------------------------------------------

def _calls_outside_nested(fn_node: ast.AST) -> list[ast.Call]:
    """Call nodes in the function body, excluding nested def/lambda
    bodies (the ``build`` factory passed to ``resume_or_start``
    legitimately constructs the Simulator inside a nested def)."""
    out: list[ast.Call] = []
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return sorted(out, key=lambda n: (n.lineno, n.col_offset))


def _constructs_simulator(
    index: ProjectIndex, fn: FunctionInfo, node: ast.Call,
    simulator_family: frozenset[str],
) -> bool:
    target = _api_target(index, fn.module, node)
    if target in simulator_family:
        return True
    enclosing = index.classes.get(fn.cls) if fn.cls is not None else None
    resolved = index.resolve_call(
        node,
        module=fn.module,
        enclosing=enclosing,
        env=index.env_for_function(fn),
    )
    return (
        resolved is not None
        and resolved.name == "__init__"
        and resolved.cls in simulator_family
    )


def _mentions_recipe(node: ast.Call) -> bool:
    """A ``"failure.json"`` constant anywhere in the call (arguments or
    receiver chain) — a recipe path being built or consumed; a help
    string naming the file hangs off a non-path-consumer call and
    never reaches here."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and sub.value == "failure.json":
            return True
    return False


def _check_lifecycle(
    index: ProjectIndex, graph: CallGraph, emitters: _Emitters
) -> None:
    reachable = graph.reachable_from_dispatch()
    simulator_family = _subclass_closure(
        index, frozenset({_SIMULATOR_QUALNAME})
    )
    for qual, fn in sorted(index.functions.items()):
        if not fn.module.startswith("repro."):
            continue
        if fn.module in SNAPSHOT_EXEMPT_MODULES:
            continue
        emit = None
        calls = _calls_outside_nested(fn.node)
        targets = [(_api_target(index, fn.module, c), c) for c in calls]
        resume_call = next(
            (c for t, c in targets if t in _RESUME_API), None
        )
        first_save = next((c for t, c in targets if t in _SAVE_API), None)
        first_load = next((c for t, c in targets if t in _LOAD_API), None)
        findings: list[tuple[ast.AST, str]] = []
        if resume_call is not None:
            for t, call in targets:
                if _constructs_simulator(index, fn, call, simulator_family):
                    findings.append(
                        (
                            call,
                            "manual Simulator construction beside "
                            "resume_or_start in the same driver path: the "
                            "manual instance never adopts restored state; "
                            "construct inside the build factory passed to "
                            "resume_or_start",
                        )
                    )
        if (
            first_save is not None
            and first_load is not None
            and (first_load.lineno, first_load.col_offset)
            < (first_save.lineno, first_save.col_offset)
        ):
            findings.append(
                (
                    first_load,
                    "checkpoint load precedes save in the same driver "
                    "body: the path being restored is then overwritten; "
                    "save to a fresh checkpoint or split the driver",
                )
            )
        for t, call in targets:
            if t in _COUNTER_API:
                findings.append(
                    (
                        call,
                        f"direct {t.rsplit('.', 1)[-1]} call outside "
                        "repro.sim.checkpoint: counter snapshots are part "
                        "of the checkpoint payload and must stay in sync "
                        "with the sim/world pickle",
                    )
                )
            elif t in _SAVE_API and qual in reachable:
                findings.append(
                    (
                        call,
                        "checkpoint save from a dispatch-reachable "
                        "callback: the in-flight event is not on the heap, "
                        "so the snapshot would drop it; save between "
                        "events (run_with_checkpoints)",
                    )
                )
            if (
                t is not None
                and t.rsplit(".", 1)[-1] in _PATH_CONSUMERS
                and _mentions_recipe(call)
                and not fn.name.startswith(("replay", "cmd_replay"))
            ):
                findings.append(
                    (
                        call,
                        "failure.json recipe consumed outside a replay "
                        "entry point: recipes pin checkpoint + horizon and "
                        "are only meaningful to repro replay-failure",
                    )
                )
        for node, message in findings:
            if emit is None:
                emit = emitters.for_module(fn.module)
            if emit is None:
                break
            emit("SIM404", node, message)


# ---------------------------------------------------------------------------
# driver + findings cache
# ---------------------------------------------------------------------------

def check_snapshots(
    index: ProjectIndex, graph: CallGraph, effects: EffectMap
) -> list[Violation]:
    """All SIM401–SIM404 findings over one indexed project."""
    violations: list[Violation] = []
    emitters = _Emitters(index, violations)
    _check_heap_picklability(index, graph, emitters)
    _check_state_escape(index, graph, effects, emitters)
    _check_manifest_drift(index, graph, emitters)
    _check_lifecycle(index, graph, emitters)
    return violations


def snapshots_cache_path(cache_path: Path | None) -> Path | None:
    """``snapshots.json`` beside the AST index cache (None disables)."""
    if cache_path is None:
        return None
    return cache_path.parent / "snapshots.json"


def load_or_compute_snapshots(
    index: ProjectIndex,
    graph: CallGraph,
    effects: EffectMap,
    cache_path: Path | None,
) -> list[Violation]:
    """Cached SIM4xx findings when the project digest matches, else
    recompute and rewrite.  Suppression directives live in the sources,
    so any edit that changes them also changes the digest — a hit can
    never serve stale findings.
    """
    digest = project_digest(index)
    if cache_path is not None and cache_path.exists():
        try:
            data = json.loads(cache_path.read_text())
            if (
                data.get("version") == _SNAPSHOTS_VERSION
                and data.get("digest") == digest
            ):
                return [
                    Violation(
                        rule=v["rule"], path=v["path"], line=v["line"],
                        col=v["col"], message=v["message"],
                    )
                    for v in data["violations"]
                ]
        except (ValueError, KeyError, TypeError):
            pass  # corrupt cache: fall through to recompute
    violations = check_snapshots(index, graph, effects)
    if cache_path is not None:
        try:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            cache_path.write_text(
                json.dumps(
                    {
                        "version": _SNAPSHOTS_VERSION,
                        "digest": digest,
                        "violations": [v.as_dict() for v in violations],
                    },
                    indent=1,
                )
                + "\n"
            )
        except OSError:
            pass  # caching is best-effort
    return violations
