"""Event-callback purity rules (SIM201–SIM203).

Golden-trace replay holds because dispatch is the *only* way state
advances: a callback runs, mutates what it owns, and schedules the
future.  These rules police the boundary for every function the
dispatch loop can reach (per
:meth:`repro.analysis.callgraph.CallGraph.reachable_from_dispatch`):

SIM201
    No I/O in dispatch-reachable code: ``open``/``print``/``input``,
    ``os.*`` (except ``os.path``/``os.environ``), ``subprocess``,
    ``shutil``, ``socket``, and file-mutation methods
    (``write_text``, ``unlink``, ``mkdir``, ...).  Event callbacks that
    touch the outside world make traces environment-dependent.
SIM202
    No cross-component mutation: a callback may store into ``self`` but
    not directly into an attribute of a *foreign* component instance
    (the classes in
    :data:`repro.analysis.manifest.COMPONENT_CLASSES`).  Effects on
    another component go through its methods — the documented API — or
    through ``Simulator.schedule``, so ownership stays auditable.
    Same-class peers are allowed (a component may manage its own kind).
SIM203
    A zero-delay self-reschedule (``sim.schedule(0, self._pump)``) is
    order-sensitive: it lands at the *same* timestamp as everything
    else scheduled "now", so correctness depends on the engine's
    FIFO-within-timestamp tie-break.  Such sites must carry a comment
    containing ``tie-break`` acknowledging the dependency.

As with the units pass, only known-known conflicts fire: an object
whose type cannot be resolved never triggers SIM202.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import CallGraph, ClassInfo, FunctionInfo, ProjectIndex
from repro.analysis.manifest import COMPONENT_CLASSES, SIM_PACKAGES
from repro.analysis.simlint import (
    Emitter,
    Violation,
    comment_lines,
    make_emitter,
)

__all__ = ["PURITY_RULES", "check_purity"]

PURITY_RULES: dict[str, str] = {
    "SIM201": "no I/O in dispatch-reachable event callbacks",
    "SIM202": (
        "event callbacks must not mutate foreign component state "
        "except via schedule or the component's methods"
    ),
    "SIM203": "zero-delay self-reschedule requires a tie-break comment",
}

_IO_BUILTINS = frozenset({"open", "print", "input"})
#: Import roots whose calls are I/O (or spawn processes that do).
_IO_ROOTS = frozenset({"os", "subprocess", "shutil", "socket"})
#: ``os`` submodule prefixes that are pure computations, not I/O.
_PURE_OS_PREFIXES = ("os.path.", "os.environ.")
#: Method names that mutate the filesystem regardless of receiver type.
_IO_METHODS = frozenset(
    {
        "write_text",
        "write_bytes",
        "read_text",
        "read_bytes",
        "unlink",
        "mkdir",
        "rmdir",
        "touch",
        "rename",
        "symlink_to",
        "hardlink_to",
    }
)
_TIE_BREAK_MARKERS = ("tie-break", "tiebreak", "tie break")


def _scoped(module: str) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in SIM_PACKAGES
    )


def _dotted_call_name(node: ast.Call) -> str | None:
    parts: list[str] = []
    func: ast.expr = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
        return ".".join(reversed(parts))
    return None


class _FunctionPurity:
    """SIM201/SIM202 over one dispatch-reachable function."""

    def __init__(self, index: ProjectIndex, fn: FunctionInfo, emit: Emitter) -> None:
        self.index = index
        self.fn = fn
        self.emit = emit
        self.enclosing: ClassInfo | None = (
            index.classes.get(fn.cls) if fn.cls is not None else None
        )
        self.type_env = index.env_for_function(fn)
        self.module_info = index.modules.get(fn.module)

    def check(self) -> None:
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Call):
                self._check_io(node)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._check_stores(node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._check_one_store(node, target)

    # -- SIM201 ----------------------------------------------------------
    def _check_io(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _IO_BUILTINS:
            self.emit(
                "SIM201",
                node,
                f"'{func.id}' call in a dispatch-reachable callback",
            )
            return
        dotted = _dotted_call_name(node)
        if dotted is not None:
            root_local = dotted.split(".")[0]
            root = root_local
            if self.module_info is not None:
                root = self.module_info.imports.get(root_local, root_local)
            resolved = dotted.replace(root_local, root, 1)
            if root.split(".")[0] in _IO_ROOTS and not resolved.startswith(
                _PURE_OS_PREFIXES
            ):
                self.emit(
                    "SIM201",
                    node,
                    f"'{resolved}' call in a dispatch-reachable callback",
                )
                return
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _IO_METHODS
            # Only when the receiver is untyped or path-like: a project
            # class defining a same-named method is its own API.
            and self._receiver_method(func) is None
        ):
            self.emit(
                "SIM201",
                node,
                f"file operation '.{func.attr}()' in a dispatch-reachable "
                "callback",
            )

    def _receiver_method(self, func: ast.Attribute) -> FunctionInfo | None:
        owner = self.index.type_of_expr(
            func.value,
            module=self.fn.module,
            enclosing=self.enclosing,
            env=self.type_env,
        )
        if owner is None:
            return None
        return self.index.method_of(owner, func.attr)

    # -- SIM202 ----------------------------------------------------------
    def _check_stores(
        self, node: ast.Assign | ast.AugAssign | ast.AnnAssign
    ) -> None:
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]
        for target in targets:
            self._check_one_store(node, target)

    def _store_base(self, target: ast.expr) -> ast.expr | None:
        """The object whose attribute/item a store chain mutates."""
        if isinstance(target, ast.Attribute):
            return target.value
        if isinstance(target, ast.Subscript):
            # Mutating ``obj.container[key]`` mutates state owned by
            # ``obj``: walk subscripts down to the attribute owner.
            return self._store_base(target.value)
        return None

    def _check_one_store(self, node: ast.stmt, target: ast.expr) -> None:
        base = self._store_base(target)
        if base is None:
            return
        if isinstance(base, ast.Name) and base.id == "self":
            return  # own state
        owner = self.index.type_of_expr(
            base,
            module=self.fn.module,
            enclosing=self.enclosing,
            env=self.type_env,
        )
        if owner is None or owner.qualname not in COMPONENT_CLASSES:
            return
        if self.enclosing is not None and owner.qualname == self.enclosing.qualname:
            return  # same-class peer
        self.emit(
            "SIM202",
            node,
            f"callback mutates {owner.name} state directly; use a "
            f"{owner.name} method or schedule the effect",
        )


def _check_zero_delay(graph: CallGraph, index: ProjectIndex) -> list[Violation]:
    violations: list[Violation] = []
    emitters: dict[str, Emitter] = {}
    comments: dict[str, dict[int, str]] = {}
    for site in graph.schedule_sites:
        caller = index.functions.get(site.caller)
        if caller is None or not _scoped(caller.module):
            continue
        if not (
            isinstance(site.delay, ast.Constant) and site.delay.value == 0
        ):
            continue
        if site.target is None or caller.cls is None:
            continue
        target_fn = index.functions.get(site.target)
        if target_fn is None or target_fn.cls != caller.cls:
            continue  # only *self*-reschedules are tie-break-sensitive
        mod = index.modules.get(caller.module)
        if mod is None:
            continue
        if caller.module not in comments:
            comments[caller.module] = comment_lines(mod.source)
        site_comments = comments[caller.module]
        # The acknowledgement may trail the call or sit in the comment
        # block immediately above it.
        first = site.node.lineno
        while first - 1 in site_comments:
            first -= 1
        lines = range(first, (site.node.end_lineno or site.node.lineno) + 1)
        if any(
            marker in site_comments.get(line, "").lower()
            for line in lines
            for marker in _TIE_BREAK_MARKERS
        ):
            continue
        if caller.module not in emitters:
            emitters[caller.module] = make_emitter(
                mod.source, mod.path, violations
            )
        emitters[caller.module](
            "SIM203",
            site.node,
            f"zero-delay self-reschedule of {target_fn.name}: add a "
            "'# ... tie-break ...' comment stating the intended "
            "same-timestamp ordering",
        )
    return violations


def check_purity(index: ProjectIndex, graph: CallGraph) -> list[Violation]:
    """Run SIM201–SIM203 over the dispatch-reachable part of the index."""
    violations: list[Violation] = []
    reachable = graph.reachable_from_dispatch()
    by_module: dict[str, list[FunctionInfo]] = {}
    for qualname in sorted(reachable):
        fn = index.functions.get(qualname)
        if fn is None or not _scoped(fn.module):
            continue
        by_module.setdefault(fn.module, []).append(fn)
    for module_name in sorted(by_module):
        mod = index.modules[module_name]
        emit = make_emitter(mod.source, mod.path, violations)
        for fn in by_module[module_name]:
            if not fn.node.body:  # synthesised dataclass __init__
                continue
            _FunctionPurity(index, fn, emit).check()
    violations.extend(_check_zero_delay(graph, index))
    return violations
