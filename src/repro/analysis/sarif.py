"""SARIF 2.1.0 output for the linter (``repro lint --format sarif``).

SARIF (Static Analysis Results Interchange Format) is the
CI-toolchain-neutral exchange format: GitHub code scanning, GitLab,
VS Code's SARIF viewer, and most annotation bots all ingest it, so one
artifact renders the shard-safety findings anywhere.  Only the minimal
mandatory subset of the (large) schema is emitted — tool driver with
rule metadata, plus one ``result`` per finding with a physical
location.  ``violations_from_sarif`` inverts the mapping exactly
(modulo SARIF's 1-based columns), which the round-trip test pins down.
"""

from __future__ import annotations

import json

from repro.analysis.simlint import Violation

__all__ = ["sarif_report", "to_sarif", "violations_from_sarif"]

_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_TOOL_URI = "https://github.com/conf-ipps/repro"


def sarif_report(
    violations: list[Violation], rules: dict[str, str]
) -> dict:
    """The SARIF log as a plain dict (one run, one tool driver).

    ``rules`` maps rule id -> one-line description; only rules that
    actually fired are listed in the driver so the file stays small.
    """
    fired = sorted({v.rule for v in violations})
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": _TOOL_URI,
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {
                                    "text": rules.get(rule, rule)
                                },
                            }
                            for rule in fired
                        ],
                    }
                },
                "results": [_result(v) for v in violations],
            }
        ],
    }


def _result(v: Violation) -> dict:
    return {
        "ruleId": v.rule,
        "level": "error",
        "message": {"text": v.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": v.path},
                    "region": {
                        # SARIF regions are 1-based; ast columns are
                        # 0-based.  Lines are 1-based on both sides.
                        "startLine": max(v.line, 1),
                        "startColumn": v.col + 1,
                    },
                }
            }
        ],
    }


def to_sarif(violations: list[Violation], rules: dict[str, str]) -> str:
    return json.dumps(sarif_report(violations, rules), indent=2) + "\n"


def violations_from_sarif(data: dict | str) -> list[Violation]:
    """Parse a SARIF log (dict or JSON text) back into :class:`Violation`s.

    Inverse of :func:`sarif_report` for logs it produced; tolerant of
    missing optional fields in logs from other tools.
    """
    if isinstance(data, str):
        data = json.loads(data)
    out: list[Violation] = []
    for run in data.get("runs", []):
        for result in run.get("results", []):
            locations = result.get("locations") or [{}]
            physical = locations[0].get("physicalLocation", {})
            region = physical.get("region", {})
            out.append(
                Violation(
                    rule=result.get("ruleId", ""),
                    path=physical.get("artifactLocation", {}).get("uri", ""),
                    line=region.get("startLine", 1),
                    col=region.get("startColumn", 1) - 1,
                    message=result.get("message", {}).get("text", ""),
                )
            )
    return out
