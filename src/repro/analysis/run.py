"""Whole-program lint driver: per-file rules + call-graph passes + baseline.

``repro lint`` lands here.  One invocation:

1. runs the per-file syntactic rules (SIM001–SIM005, SIM999) of
   :mod:`repro.analysis.simlint` over every file;
2. builds the :class:`~repro.analysis.callgraph.ProjectIndex` (optionally
   from a content-hashed AST cache) and the call graph once, then runs
   the units (SIM101–SIM104) and purity (SIM201–SIM203) passes over it;
3. with ``shards=True`` / ``snapshots=True`` (or a ``--select`` that
   reaches SIM3xx/SIM4xx), computes the interprocedural effect
   summaries (:mod:`repro.analysis.effects`, cached as ``effects.json``
   beside the AST cache) and runs the shard-safety rules SIM301–SIM304
   (:mod:`repro.analysis.shards`) and/or the snapshot-safety rules
   SIM401–SIM404 (:mod:`repro.analysis.snapshots`, findings cached as
   ``snapshots.json``) on top;
4. subtracts the checked-in baseline
   (:mod:`repro.analysis.baseline`), so CI fails only on *new* findings
   — stale entries get one marked grace run, then fail the gate
   (``prune_baseline=True`` drops them immediately instead).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import baseline as baseline_io
from repro.analysis.baseline import BaselineEntry
from repro.analysis.callgraph import CallGraph, ProjectIndex
from repro.analysis.effects import effects_cache_path, load_or_compute_effects
from repro.analysis.purity import PURITY_RULES, check_purity
from repro.analysis.registry import ALL_RULES, resolve_active_rules
from repro.analysis.shards import SHARD_RULES, check_shards
from repro.analysis.simlint import (
    Violation,
    _iter_python_files,
    lint_file,
)
from repro.analysis.snapshots import (
    SNAPSHOT_RULES,
    load_or_compute_snapshots,
    snapshots_cache_path,
)
from repro.analysis.units import UNIT_RULES, check_units

__all__ = ["ALL_RULES", "LintReport", "lint_project"]


@dataclass
class LintReport:
    """Outcome of one whole-program lint run."""

    #: Findings not covered by the baseline — these fail CI.
    violations: list[Violation]
    #: Baseline entries that matched a current finding.
    baselined: list[BaselineEntry] = field(default_factory=list)
    #: Baseline entries that just went stale (first miss: grace run).
    stale: list[BaselineEntry] = field(default_factory=list)
    #: Entries stale for more than one run — these fail CI too.
    stale_failures: list[BaselineEntry] = field(default_factory=list)
    #: Entries dropped by ``prune_baseline=True``.
    pruned: list[BaselineEntry] = field(default_factory=list)
    file_count: int = 0
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.stale_failures


def lint_project(
    paths: list[str | Path],
    *,
    baseline_path: Path | None = None,
    update_baseline: bool = False,
    cache_path: Path | None = None,
    root: Path | None = None,
    shards: bool = False,
    prune_baseline: bool = False,
    snapshots: bool = False,
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> LintReport:
    """Run the selected rules over ``paths`` and apply the baseline.

    ``root`` anchors the repo-relative paths stored in the baseline
    (defaults to the current directory when a baseline is in play).
    With ``update_baseline`` the baseline file is rewritten from the
    current findings (reasons carried forward, new entries stamped
    ``TODO: justify``) and the report comes back clean.  ``shards`` /
    ``snapshots`` add the interprocedural effect pass and SIM301–SIM304
    / SIM401–SIM404; ``select`` / ``ignore`` narrow the rule set
    (:func:`repro.analysis.registry.resolve_active_rules` — a selector
    matching nothing raises ``ValueError``).  A pass none of whose
    rules are active is skipped entirely.  ``prune_baseline`` drops
    entries that matched nothing this run.
    """
    start = time.perf_counter()
    active = resolve_active_rules(
        select=select, ignore=ignore, shards=shards, snapshots=snapshots
    )
    files = list(_iter_python_files(paths))

    violations: list[Violation] = []
    for path in files:
        violations.extend(
            v for v in lint_file(path) if v.rule in active
        )

    needs_effects = bool(
        active & (set(SHARD_RULES) | set(SNAPSHOT_RULES))
    )
    needs_graph = needs_effects or bool(
        active & (set(UNIT_RULES) | set(PURITY_RULES))
    )
    if needs_graph:
        index = ProjectIndex.build_cached(files, cache_path)
        graph = CallGraph(index)
        if active & set(UNIT_RULES):
            violations.extend(
                v for v in check_units(index, graph) if v.rule in active
            )
        if active & set(PURITY_RULES):
            violations.extend(
                v for v in check_purity(index, graph) if v.rule in active
            )
        if needs_effects:
            effects = load_or_compute_effects(
                index, graph, effects_cache_path(cache_path)
            )
            if active & set(SHARD_RULES):
                violations.extend(
                    v
                    for v in check_shards(index, graph, effects)
                    if v.rule in active
                )
            if active & set(SNAPSHOT_RULES):
                violations.extend(
                    v
                    for v in load_or_compute_snapshots(
                        index, graph, effects, snapshots_cache_path(cache_path)
                    )
                    if v.rule in active
                )
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))

    report = LintReport(
        violations=violations,
        file_count=len(files),
    )
    if baseline_path is not None:
        if root is None:
            root = Path.cwd()
        if update_baseline:
            report.baselined = baseline_io.update_baseline(
                baseline_path, violations, root=root
            )
            report.violations = []
        else:
            entries = baseline_io.load_baseline(baseline_path)
            fresh, matched = baseline_io.apply_baseline(
                violations, entries, root=root
            )
            report.violations = fresh
            report.baselined = matched
            if prune_baseline:
                report.pruned = baseline_io.prune_stale(
                    baseline_path, entries, matched
                )
            else:
                report.stale, report.stale_failures = (
                    baseline_io.reconcile_stale(baseline_path, entries, matched)
                )
    report.elapsed_s = time.perf_counter() - start
    return report
