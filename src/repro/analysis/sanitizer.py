"""Runtime DES sanitizer: dispatch-time invariant checks (opt-in).

The static linter (:mod:`repro.analysis.simlint`) catches patterns that
*could* break determinism; this module catches state that already *has*
gone wrong, the moment it happens.  Enable it with
``Simulator(sanitize=True)`` or ``REPRO_SANITIZE=1`` (which upgrades
every plainly-constructed :class:`~repro.sim.engine.Simulator` in the
process, so whole existing scenarios run sanitized unchanged).

Checked invariants, per dispatched event:

* **event-time-monotonic** — the clock never moves backwards between
  dispatches (a corrupted heap or hand-pushed entry fails loudly);
* **queue-depth** — link queued bytes, switch buffered/ingress bytes,
  and NIC TXQ usage never go negative (and TXQ never exceeds capacity);
* **byte-conservation** — every DATA byte a NIC receives is either
  delivered in a reassembled message, still pending reassembly, or
  explicitly discarded (CRC failure, go-back-N dedup, partial-message
  eviction): ``bytes_received == reassembly_bytes_delivered + Σ partial
  + reassembly_bytes_discarded``;
* **reliability-bounds** — per-flow go-back-N state stays sane: never
  more unacked segments than the window, ``base_seq <= next_seq``, the
  current RTO inside ``[rto_ns, rto_max_ns]`` (backoff can neither
  undershoot the base nor escape the ceiling), and the retransmit queue
  never larger than the unacked window it was copied from;
* **wrr-tokens** — TokenWRR balances stay within ``[0, weight]``
  (the PR 1 clamp-at-zero semantics);
* **ftl-mapping** — after every GC erase, the forward map and the
  per-block reverse maps agree exactly (checked via a wrapper around
  :meth:`repro.ssd.ftl.FTL.finish_gc`, since a full walk is O(mapped
  pages) and only GC restructures the map).

Violations raise :class:`SanitizerError` carrying the invariant name,
the simulated time, and the offending event's callback site label (the
same ``__qualname__`` labels :mod:`repro.profiling` reports), so a
failure reads like ``[queue-depth] at t=1840ns during Link._finish: ...``.

The sanitizer never schedules events or draws randomness, so a
sanitized run is bit-identical to a plain one — the overhead budget
(``<= 2.5x`` on the incast cell) is enforced by
``benchmarks/smoke_cell.py`` and recorded in ``benchmarks/results/``.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.profiling import site_label
from repro.sim.engine import MaxEventsExceeded, Simulator

if TYPE_CHECKING:
    from repro.net.link import Link
    from repro.net.nic import NIC
    from repro.net.switch import Switch
    from repro.nvme.wrr import TokenWRR
    from repro.ssd.ftl import FTL

__all__ = ["SanitizerError", "Sanitizer", "SanitizingSimulator", "ftl_mapping_violation"]


class SanitizerError(RuntimeError):
    """A runtime invariant of the simulation was violated.

    Attributes
    ----------
    invariant:
        Short invariant name (``queue-depth``, ``byte-conservation``, ...).
    detail:
        Human-readable description of the violated state.
    time_ns / site:
        Simulated time and callback site label of the offending event;
        filled in by the dispatch loop when the violation is detected
        outside it (e.g. the FTL GC hook).
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        *,
        time_ns: int | None = None,
        site: str | None = None,
    ) -> None:
        super().__init__(detail)
        self.invariant = invariant
        self.detail = detail
        self.time_ns = time_ns
        self.site = site

    def __str__(self) -> str:
        at = f" at t={self.time_ns}ns" if self.time_ns is not None else ""
        during = f" during {self.site}" if self.site else ""
        return f"[{self.invariant}]{at}{during}: {self.detail}"


def ftl_mapping_violation(ftl: "FTL") -> str | None:
    """Full forward/reverse FTL map consistency walk; None when clean."""
    chips = ftl._chips
    for lpn, (chip_index, block_id, page) in ftl._map.items():
        if not 0 <= chip_index < len(chips):
            return f"lpn {lpn} maps to nonexistent chip {chip_index}"
        block = chips[chip_index].blocks.get(block_id)
        if block is None:
            return f"lpn {lpn} maps to erased/unknown block {block_id} on chip {chip_index}"
        if block.page_lpn.get(page) != lpn:
            return (
                f"lpn {lpn} maps to (chip={chip_index}, block={block_id}, "
                f"page={page}) but the block records lpn "
                f"{block.page_lpn.get(page)} there"
            )
    for chip in chips:
        for block in chip.blocks.values():
            for page, lpn in block.page_lpn.items():
                if ftl._map.get(lpn) != (chip.chip_index, block.id, page):
                    return (
                        f"block {block.id} on chip {chip.chip_index} claims valid "
                        f"lpn {lpn} at page {page} but the map says "
                        f"{ftl._map.get(lpn)}"
                    )
    return None


class Sanitizer:
    """Registry of tracked components plus their per-event check functions.

    Components self-register at construction time when their simulator
    carries a sanitizer (``sim.sanitizer is not None``); tests can also
    register objects directly.  Checks are grouped by component type so
    the dispatch loop pays a handful of Python calls per event, each a
    tight loop over a homogeneous list.
    """

    __slots__ = ("_links", "_switches", "_nics", "_wrrs", "_ftls", "events_checked")

    def __init__(self) -> None:
        self._links: list[Link] = []
        self._switches: list[Switch] = []
        self._nics: list[NIC] = []
        self._wrrs: list[tuple[str, TokenWRR]] = []
        self._ftls: list[FTL] = []
        self.events_checked = 0

    # -- registration ---------------------------------------------------
    def track_link(self, link: "Link") -> None:
        self._links.append(link)

    def track_switch(self, switch: "Switch") -> None:
        self._switches.append(switch)

    def track_nic(self, nic: "NIC") -> None:
        self._nics.append(nic)

    def track_wrr(self, wrr: "TokenWRR", *, name: str = "TokenWRR") -> None:
        self._wrrs.append((name, wrr))

    def track_ftl(self, ftl: "FTL") -> None:
        """Wrap ``ftl.finish_gc`` with a full mapping-consistency walk."""
        self._ftls.append(ftl)
        original = ftl.finish_gc

        def checked_finish_gc(chip_index: int, block_id: int) -> None:
            original(chip_index, block_id)
            detail = ftl_mapping_violation(ftl)
            if detail is not None:
                raise SanitizerError(
                    "ftl-mapping", f"after GC erase of block {block_id}: {detail}"
                )

        ftl.finish_gc = checked_finish_gc  # type: ignore[method-assign]

    # -- per-event checks ------------------------------------------------
    def check(self) -> tuple[str, str] | None:
        """Run every cheap invariant; ``(invariant, detail)`` or None."""
        self.events_checked += 1
        for link in self._links:
            if link._queued_bytes < 0:
                return (
                    "queue-depth",
                    f"link {link.name} queued_bytes went negative "
                    f"({link._queued_bytes})",
                )
        for switch in self._switches:
            if switch._buffered_bytes < 0:
                return (
                    "queue-depth",
                    f"switch {switch.name} buffered_bytes went negative "
                    f"({switch._buffered_bytes})",
                )
            for port, level in switch._ingress_bytes.items():
                if level < 0:
                    return (
                        "queue-depth",
                        f"switch {switch.name} ingress port {port} byte account "
                        f"went negative ({level})",
                    )
        for nic in self._nics:
            used = nic._txq_used
            if used < 0 or used > nic.config.txq_capacity_bytes:
                return (
                    "queue-depth",
                    f"NIC {nic.name} TXQ usage {used} outside "
                    f"[0, {nic.config.txq_capacity_bytes}]",
                )
            pending = sum(nic._reassembly.values())
            expected = (
                nic.reassembly_bytes_delivered
                + pending
                + nic.reassembly_bytes_discarded
            )
            if nic.bytes_received != expected:
                return (
                    "byte-conservation",
                    f"NIC {nic.name} received {nic.bytes_received} B but "
                    f"delivered {nic.reassembly_bytes_delivered} B with "
                    f"{pending} B pending and "
                    f"{nic.reassembly_bytes_discarded} B discarded "
                    f"({nic.bytes_received - expected:+d} B unaccounted)",
                )
            for flow in nic.flows.values():
                if flow.queued_bytes < 0:
                    return (
                        "queue-depth",
                        f"flow {nic.name}->{flow.dst} queued_bytes went "
                        f"negative ({flow.queued_bytes})",
                    )
                rel = flow._rel
                if rel is None:
                    continue
                if len(rel.unacked) > rel.config.window_packets:
                    return (
                        "reliability-bounds",
                        f"flow {nic.name}->{flow.dst} holds "
                        f"{len(rel.unacked)} unacked segments, window is "
                        f"{rel.config.window_packets}",
                    )
                if rel.base_seq > rel.next_seq:
                    return (
                        "reliability-bounds",
                        f"flow {nic.name}->{flow.dst} base_seq "
                        f"{rel.base_seq} beyond next_seq {rel.next_seq}",
                    )
                if not rel.config.rto_ns <= rel.rto_current_ns <= rel.config.rto_max_ns:
                    return (
                        "reliability-bounds",
                        f"flow {nic.name}->{flow.dst} RTO "
                        f"{rel.rto_current_ns} outside "
                        f"[{rel.config.rto_ns}, {rel.config.rto_max_ns}]",
                    )
                if len(rel.retransmit_queue) > len(rel.unacked):
                    return (
                        "reliability-bounds",
                        f"flow {nic.name}->{flow.dst} retransmit queue "
                        f"({len(rel.retransmit_queue)}) larger than the "
                        f"unacked window ({len(rel.unacked)})",
                    )
        for name, wrr in self._wrrs:
            if not (0 <= wrr.read_tokens <= wrr.read_weight):
                return (
                    "wrr-tokens",
                    f"{name} read tokens {wrr.read_tokens} outside "
                    f"[0, {wrr.read_weight}]",
                )
            if not (0 <= wrr.write_tokens <= wrr.write_weight):
                return (
                    "wrr-tokens",
                    f"{name} write tokens {wrr.write_tokens} outside "
                    f"[0, {wrr.write_weight}]",
                )
        return None

    def check_ftls(self) -> tuple[str, str] | None:
        """On-demand full FTL walk (also runs inside the GC hook)."""
        for ftl in self._ftls:
            detail = ftl_mapping_violation(ftl)
            if detail is not None:
                return ("ftl-mapping", detail)
        return None


class SanitizingSimulator(Simulator):
    """A :class:`Simulator` whose dispatch loop checks invariants.

    The loop mirrors the plain engine's (same pop order, same ``until``
    and ``max_events`` semantics), so a sanitized run is bit-identical;
    it additionally verifies clock monotonicity before each dispatch and
    runs every registered component check after each callback, raising
    :class:`SanitizerError` annotated with the offending event's site.
    """

    def __init__(self, *, trace: bool = False, sanitize: bool | None = None) -> None:
        super().__init__(trace=trace)
        self.sanitizer = Sanitizer()
        self._last_dispatch_ns = 0

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        trace = self._trace
        sanitizer = self.sanitizer
        check = sanitizer.check
        dispatched = 0
        try:
            while heap:
                time, _seq, ev = heap[0]
                if ev.cancelled:
                    heappop(heap)
                    queue._dead -= 1
                    continue
                if until is not None and time > until:
                    break
                heappop(heap)
                ev._queue = None
                queue._live -= 1
                callback = ev.callback
                if time < self._last_dispatch_ns:
                    raise SanitizerError(
                        "event-time-monotonic",
                        f"event scheduled at t={time} dispatched after "
                        f"t={self._last_dispatch_ns} — the clock moved backwards",
                        time_ns=time,
                        site=site_label(callback),
                    )
                self._last_dispatch_ns = time
                self.now = time
                if trace:
                    self.dispatch_log.append((time, site_label(callback)))
                args = ev.args
                try:
                    if args:
                        callback(*args)
                    else:
                        callback()
                except SanitizerError as err:
                    # Deferred-origin violations (e.g. the FTL GC hook)
                    # get the dispatch context stamped on the way out.
                    if err.site is None:
                        err.site = site_label(callback)
                    if err.time_ns is None:
                        err.time_ns = time
                    raise
                failure = check()
                if failure is not None:
                    invariant, detail = failure
                    raise SanitizerError(
                        invariant, detail, time_ns=time, site=site_label(callback)
                    )
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    raise MaxEventsExceeded(
                        max_events, dispatched, queue._live, self.now
                    )
        finally:
            self.events_dispatched += dispatched
        if until is not None and until > self.now:
            self.now = until
        if self.watchdog is not None and not heap:
            self.watchdog(self)
        return dispatched

    def check_now(self) -> None:
        """Run every invariant check immediately (outside dispatch)."""
        failure = self.sanitizer.check() or self.sanitizer.check_ftls()
        if failure is not None:
            invariant, detail = failure
            raise SanitizerError(invariant, detail, time_ns=self.now)


def env_sanitize_enabled(value: str | None) -> bool:
    """Interpret the ``REPRO_SANITIZE`` environment value."""
    if value is None:
        return False
    return value.strip().lower() not in ("", "0", "false", "no", "off")
