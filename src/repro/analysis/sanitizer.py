"""Runtime DES sanitizer: dispatch-time invariant checks (opt-in).

The static linter (:mod:`repro.analysis.simlint`) catches patterns that
*could* break determinism; this module catches state that already *has*
gone wrong, the moment it happens.  Enable it with
``Simulator(sanitize=True)`` or ``REPRO_SANITIZE=1`` (which upgrades
every plainly-constructed :class:`~repro.sim.engine.Simulator` in the
process, so whole existing scenarios run sanitized unchanged).

Checked invariants, per checked event:

* **event-time-monotonic** — the clock never moves backwards between
  dispatches (a corrupted heap or hand-pushed entry fails loudly);
* **queue-depth** — link queued bytes, switch buffered/ingress bytes,
  and NIC TXQ usage never go negative (and TXQ never exceeds capacity);
* **byte-conservation** — every DATA byte a NIC receives is either
  delivered in a reassembled message, still pending reassembly, or
  explicitly discarded (CRC failure, go-back-N dedup, partial-message
  eviction): ``bytes_received == reassembly_bytes_delivered + Σ partial
  + reassembly_bytes_discarded``;
* **reliability-bounds** — per-flow go-back-N state stays sane: never
  more unacked segments than the window, ``base_seq <= next_seq``, the
  current RTO inside ``[rto_ns, rto_max_ns]`` (backoff can neither
  undershoot the base nor escape the ceiling), and the retransmit queue
  never larger than the unacked window it was copied from;
* **wrr-tokens** — TokenWRR balances stay within ``[0, weight]``
  (the PR 1 clamp-at-zero semantics);
* **ftl-mapping** — after every GC erase, the forward map and the
  per-block reverse maps agree exactly (checked via a wrapper around
  :meth:`repro.ssd.ftl.FTL.finish_gc`, since a full walk is O(mapped
  pages) and only GC restructures the map).

Stride mode
-----------
``Simulator(sanitize="stride:K")`` (or ``REPRO_SANITIZE=stride:K``)
runs the component sweep every K-th dispatched event instead of every
event, plus one final full sweep when each ``run()`` call returns —
so a *sticky* violation (negative queue depth, broken conservation sum)
is always caught, at most K-1 events late, for ~1/K of the checking
cost.  Clock monotonicity is still verified on every event (two int
compares).  A strided run is bit-identical to a plain or fully-checked
run — the sanitizer only observes.

When a strided run does trip, the violation site is coarse (the event
*at the sampling point*, not the event that corrupted state).  The
:func:`escalate` helper implements the rewind-free escalation protocol:
re-run the same scenario seeded with ``sanitize=True`` — determinism
makes the replay exact — and let the full-fidelity run pinpoint the
first offending event.

Violations raise :class:`SanitizerError` carrying the invariant name,
the simulated time, and the offending event's callback site label (the
same ``__qualname__`` labels :mod:`repro.profiling` reports), so a
failure reads like ``[queue-depth] at t=1840ns during Link._finish: ...``.

Per-invariant-group cost counters (checks run, violations found, and —
after :meth:`Sanitizer.enable_cost_tracking` — nanoseconds spent per
group) feed :class:`repro.profiling.SanitizerCostProfile`.

The sanitizer never schedules events or draws randomness, so a
sanitized run is bit-identical to a plain one — the overhead budgets
(``<= 3.0x`` full, ``<= 1.15x`` at stride 64, on the incast cell) are
enforced by ``benchmarks/smoke_cell.py`` and recorded in
``benchmarks/results/``.  The sanitizing dispatch loop never coalesces
anonymous events into batch dispatches (each member dispatches singly —
provably the same order, see ``repro.sim.engine``), so full-fidelity
checks run between batch members and localization stays exact.
"""

from __future__ import annotations

import heapq
import time as _walltime
from typing import TYPE_CHECKING, Callable, TypeVar

from repro.profiling import site_label
from repro.sim.engine import MaxEventsExceeded, Simulator
from repro.sim.events import HANDLED_MARK

if TYPE_CHECKING:
    from repro.net.fluid import FluidDomain
    from repro.net.link import Link
    from repro.net.nic import NIC
    from repro.net.switch import Switch
    from repro.nvme.wrr import TokenWRR
    from repro.ssd.ftl import FTL

__all__ = [
    "SanitizerError",
    "Sanitizer",
    "SanitizingSimulator",
    "escalate",
    "ftl_mapping_violation",
    "parse_stride",
]

_T = TypeVar("_T")


class SanitizerError(RuntimeError):
    """A runtime invariant of the simulation was violated.

    Attributes
    ----------
    invariant:
        Short invariant name (``queue-depth``, ``byte-conservation``, ...).
    detail:
        Human-readable description of the violated state.
    time_ns / site:
        Simulated time and callback site label of the offending event;
        filled in by the dispatch loop when the violation is detected
        outside it (e.g. the FTL GC hook).
    """

    def __init__(
        self,
        invariant: str,
        detail: str,
        *,
        time_ns: int | None = None,
        site: str | None = None,
    ) -> None:
        super().__init__(detail)
        self.invariant = invariant
        self.detail = detail
        self.time_ns = time_ns
        self.site = site

    def __str__(self) -> str:
        at = f" at t={self.time_ns}ns" if self.time_ns is not None else ""
        during = f" during {self.site}" if self.site else ""
        return f"[{self.invariant}]{at}{during}: {self.detail}"


def ftl_mapping_violation(ftl: "FTL") -> str | None:
    """Full forward/reverse FTL map consistency walk; None when clean."""
    chips = ftl._chips
    for lpn, (chip_index, block_id, page) in ftl._map.items():
        if not 0 <= chip_index < len(chips):
            return f"lpn {lpn} maps to nonexistent chip {chip_index}"
        block = chips[chip_index].blocks.get(block_id)
        if block is None:
            return f"lpn {lpn} maps to erased/unknown block {block_id} on chip {chip_index}"
        if block.page_lpn.get(page) != lpn:
            return (
                f"lpn {lpn} maps to (chip={chip_index}, block={block_id}, "
                f"page={page}) but the block records lpn "
                f"{block.page_lpn.get(page)} there"
            )
    for chip in chips:
        for block in chip.blocks.values():
            for page, lpn in block.page_lpn.items():
                if ftl._map.get(lpn) != (chip.chip_index, block.id, page):
                    return (
                        f"block {block.id} on chip {chip.chip_index} claims valid "
                        f"lpn {lpn} at page {page} but the map says "
                        f"{ftl._map.get(lpn)}"
                    )
    return None


#: Invariant-group keys, in sweep order (the cost-counter axis).
CHECK_GROUPS = ("links", "switches", "nics", "wrrs", "fluids")


class _CheckedFinishGC:
    """Instance-attribute wrapper for ``ftl.finish_gc`` (mapping check).

    A slotted callable rather than a closure so a sanitized FTL can be
    checkpoint-pickled.  It deliberately stores only the FTL and calls
    the *class* method through ``type(...)``: capturing the original
    bound ``ftl.finish_gc`` would re-capture this very wrapper (the
    instance attribute shadows the class method) after a restore.
    """

    __slots__ = ("ftl",)

    def __init__(self, ftl: "FTL") -> None:
        self.ftl = ftl

    def __call__(self, chip_index: int, block_id: int) -> None:
        type(self.ftl).finish_gc(self.ftl, chip_index, block_id)
        detail = ftl_mapping_violation(self.ftl)
        if detail is not None:
            raise SanitizerError(
                "ftl-mapping", f"after GC erase of block {block_id}: {detail}"
            )


class Sanitizer:
    """Registry of tracked components plus their per-event check functions.

    Components self-register at construction time when their simulator
    carries a sanitizer (``sim.sanitizer is not None``); tests can also
    register objects directly.  Checks are grouped by component type so
    the dispatch loop pays a handful of Python calls per checked event,
    each a tight loop over a homogeneous list.  Per-group counters
    (``check_counts``, ``violation_counts``, and ``check_ns`` once
    :meth:`enable_cost_tracking` is on) record where checking time goes.
    """

    __slots__ = (
        "_links",
        "_switches",
        "_nics",
        "_wrrs",
        "_ftls",
        "_fluids",
        "events_checked",
        "check_counts",
        "violation_counts",
        "check_ns",
        "_timed",
    )

    def __init__(self) -> None:
        self._links: list[Link] = []
        self._switches: list[Switch] = []
        self._nics: list[NIC] = []
        self._wrrs: list[tuple[str, TokenWRR]] = []
        self._ftls: list[FTL] = []
        self._fluids: list[FluidDomain] = []
        self.events_checked = 0
        #: group -> component sweeps run (one per checked event).
        self.check_counts: dict[str, int] = {g: 0 for g in CHECK_GROUPS}
        #: group -> violations the sweep reported.
        self.violation_counts: dict[str, int] = {g: 0 for g in CHECK_GROUPS}
        #: group -> cumulative wall ns (only grows under cost tracking).
        self.check_ns: dict[str, int] = {g: 0 for g in CHECK_GROUPS}
        self._timed = False

    def enable_cost_tracking(self) -> None:
        """Start timing each invariant group (perf_counter_ns per sweep).

        Timing costs a couple of clock reads per group per checked
        event, so it is off by default; the count/violation counters are
        maintained either way.
        """
        self._timed = True

    # -- registration ---------------------------------------------------
    def track_link(self, link: "Link") -> None:
        self._links.append(link)

    def track_switch(self, switch: "Switch") -> None:
        self._switches.append(switch)

    def track_nic(self, nic: "NIC") -> None:
        self._nics.append(nic)

    def track_wrr(self, wrr: "TokenWRR", *, name: str = "TokenWRR") -> None:
        self._wrrs.append((name, wrr))

    def track_fluid(self, domain: "FluidDomain") -> None:
        self._fluids.append(domain)

    def track_ftl(self, ftl: "FTL") -> None:
        """Wrap ``ftl.finish_gc`` with a full mapping-consistency walk."""
        self._ftls.append(ftl)
        ftl.finish_gc = _CheckedFinishGC(ftl)  # type: ignore[method-assign]

    # -- per-event checks ------------------------------------------------
    def _check_links(self) -> tuple[str, str] | None:
        for link in self._links:
            if link._queued_bytes < 0:
                return (
                    "queue-depth",
                    f"link {link.name} queued_bytes went negative "
                    f"({link._queued_bytes})",
                )
        return None

    def _check_switches(self) -> tuple[str, str] | None:
        for switch in self._switches:
            if switch._buffered_bytes < 0:
                return (
                    "queue-depth",
                    f"switch {switch.name} buffered_bytes went negative "
                    f"({switch._buffered_bytes})",
                )
            for port, level in switch._ingress_bytes.items():
                if level < 0:
                    return (
                        "queue-depth",
                        f"switch {switch.name} ingress port {port} byte account "
                        f"went negative ({level})",
                    )
        return None

    def _check_nics(self) -> tuple[str, str] | None:
        for nic in self._nics:
            used = nic._txq_used
            if used < 0 or used > nic.config.txq_capacity_bytes:
                return (
                    "queue-depth",
                    f"NIC {nic.name} TXQ usage {used} outside "
                    f"[0, {nic.config.txq_capacity_bytes}]",
                )
            reassembly = nic._reassembly
            pending = sum(reassembly.values()) if reassembly else 0
            expected = (
                nic.reassembly_bytes_delivered
                + pending
                + nic.reassembly_bytes_discarded
            )
            if nic.bytes_received != expected:
                return (
                    "byte-conservation",
                    f"NIC {nic.name} received {nic.bytes_received} B but "
                    f"delivered {nic.reassembly_bytes_delivered} B with "
                    f"{pending} B pending and "
                    f"{nic.reassembly_bytes_discarded} B discarded "
                    f"({nic.bytes_received - expected:+d} B unaccounted)",
                )
            for flow in nic.flows.values():
                if flow.queued_bytes < 0:
                    return (
                        "queue-depth",
                        f"flow {nic.name}->{flow.dst} queued_bytes went "
                        f"negative ({flow.queued_bytes})",
                    )
                rel = flow._rel
                if rel is None:
                    continue
                rcfg = rel.config
                if len(rel.unacked) > rcfg.window_packets:
                    return (
                        "reliability-bounds",
                        f"flow {nic.name}->{flow.dst} holds "
                        f"{len(rel.unacked)} unacked segments, window is "
                        f"{rcfg.window_packets}",
                    )
                if rel.base_seq > rel.next_seq:
                    return (
                        "reliability-bounds",
                        f"flow {nic.name}->{flow.dst} base_seq "
                        f"{rel.base_seq} beyond next_seq {rel.next_seq}",
                    )
                if not rcfg.rto_ns <= rel.rto_current_ns <= rcfg.rto_max_ns:
                    return (
                        "reliability-bounds",
                        f"flow {nic.name}->{flow.dst} RTO "
                        f"{rel.rto_current_ns} outside "
                        f"[{rcfg.rto_ns}, {rcfg.rto_max_ns}]",
                    )
                if len(rel.retransmit_queue) > len(rel.unacked):
                    return (
                        "reliability-bounds",
                        f"flow {nic.name}->{flow.dst} retransmit queue "
                        f"({len(rel.retransmit_queue)}) larger than the "
                        f"unacked window ({len(rel.unacked)})",
                    )
        return None

    def _check_wrrs(self) -> tuple[str, str] | None:
        for name, wrr in self._wrrs:
            if not (0 <= wrr.read_tokens <= wrr.read_weight):
                return (
                    "wrr-tokens",
                    f"{name} read tokens {wrr.read_tokens} outside "
                    f"[0, {wrr.read_weight}]",
                )
            if not (0 <= wrr.write_tokens <= wrr.write_weight):
                return (
                    "wrr-tokens",
                    f"{name} write tokens {wrr.write_tokens} outside "
                    f"[0, {wrr.write_weight}]",
                )
        return None

    def _check_fluids(self) -> tuple[str, str] | None:
        for domain in self._fluids:
            failure = domain.fluid_violation()
            if failure is not None:
                return failure
        return None

    #: Group key -> bound sweep, filled per instance in ``check``.
    _GROUP_METHODS = (
        ("links", _check_links),
        ("switches", _check_switches),
        ("nics", _check_nics),
        ("wrrs", _check_wrrs),
        ("fluids", _check_fluids),
    )

    def check(self) -> tuple[str, str] | None:
        """Run every cheap invariant; ``(invariant, detail)`` or None."""
        self.events_checked += 1
        counts = self.check_counts
        if self._timed:
            clock = _walltime.perf_counter_ns
            ns = self.check_ns
            for group, method in self._GROUP_METHODS:
                t0 = clock()
                failure = method(self)
                ns[group] += clock() - t0
                counts[group] += 1
                if failure is not None:
                    self.violation_counts[group] += 1
                    return failure
            return None
        for group, method in self._GROUP_METHODS:
            counts[group] += 1
            failure = method(self)
            if failure is not None:
                self.violation_counts[group] += 1
                return failure
        return None

    def check_ftls(self) -> tuple[str, str] | None:
        """On-demand full FTL walk (also runs inside the GC hook)."""
        for ftl in self._ftls:
            detail = ftl_mapping_violation(ftl)
            if detail is not None:
                return ("ftl-mapping", detail)
        return None


def parse_stride(sanitize: bool | str) -> int:
    """Check stride encoded in a ``sanitize`` value (1 = every event).

    ``True`` (and truthy legacy strings like ``"1"``/``"on"``) mean
    full fidelity; ``"stride:K"`` samples every K-th event.
    """
    if isinstance(sanitize, str):
        value = sanitize.strip().lower()
        if value.startswith("stride:"):
            try:
                stride = int(value.split(":", 1)[1])
            except ValueError:
                raise ValueError(f"malformed sanitize stride: {sanitize!r}") from None
            if stride < 1:
                raise ValueError(f"sanitize stride must be >= 1, got {stride}")
            return stride
    return 1


class SanitizingSimulator(Simulator):
    """A :class:`Simulator` whose dispatch loop checks invariants.

    The loop mirrors the plain engine's (same pop order, same ``until``
    and ``max_events`` semantics), so a sanitized run is bit-identical;
    it additionally verifies clock monotonicity before each dispatch and
    runs the component checks after each K-th callback (K =
    :attr:`check_stride`, 1 under ``sanitize=True``), raising
    :class:`SanitizerError` annotated with the offending event's site.
    Anonymous events are dispatched one by one (never batch-coalesced),
    so under full fidelity every invariant holds between batch members.
    """

    __slots__ = ("_last_dispatch_ns", "check_stride", "_check_countdown")

    def __init__(
        self, *, trace: bool = False, sanitize: bool | str | None = None
    ) -> None:
        super().__init__(trace=trace)
        self.sanitizer = Sanitizer()
        self._last_dispatch_ns = 0
        if sanitize is None:
            import os

            sanitize = env_sanitize_mode(os.environ.get("REPRO_SANITIZE")) or True
        #: Component checks run every this-many dispatched events.
        self.check_stride = parse_stride(sanitize)
        self._check_countdown = self.check_stride

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        trace = self._trace
        sanitizer = self.sanitizer
        check = sanitizer.check
        stride = self.check_stride
        countdown = self._check_countdown
        dispatched = 0
        try:
            while heap:
                time, _seq, callback, args = heap[0]
                if until is not None and time > until:
                    break
                heappop(heap)
                if callback is not HANDLED_MARK:
                    queue._live -= 1
                else:
                    ev = args
                    if ev.cancelled:
                        queue._dead -= 1
                        continue
                    ev._queue = None
                    queue._live -= 1
                    callback = ev.callback
                    args = ev.args
                if time < self._last_dispatch_ns:
                    raise SanitizerError(
                        "event-time-monotonic",
                        f"event scheduled at t={time} dispatched after "
                        f"t={self._last_dispatch_ns} — the clock moved backwards",
                        time_ns=time,
                        site=site_label(callback),
                    )
                self._last_dispatch_ns = time
                self.now = time
                if trace:
                    self.dispatch_log.append((time, site_label(callback)))
                try:
                    if args:
                        callback(*args)
                    else:
                        callback()
                except SanitizerError as err:
                    # Deferred-origin violations (e.g. the FTL GC hook)
                    # get the dispatch context stamped on the way out.
                    if err.site is None:
                        err.site = site_label(callback)
                    if err.time_ns is None:
                        err.time_ns = time
                    raise
                countdown -= 1
                if countdown <= 0:
                    countdown = stride
                    failure = check()
                    if failure is not None:
                        invariant, detail = failure
                        raise SanitizerError(
                            invariant, detail, time_ns=time, site=site_label(callback)
                        )
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    raise MaxEventsExceeded(
                        max_events, dispatched, queue._live, self.now
                    )
        finally:
            self._check_countdown = countdown
            self.events_dispatched += dispatched
        if stride > 1 and dispatched:
            # End-of-run full sweep: a strided run must not let a sticky
            # violation escape just because the run ended mid-window.
            failure = check()
            if failure is not None:
                invariant, detail = failure
                raise SanitizerError(
                    invariant,
                    f"{detail} (caught by the end-of-run sweep; re-run with "
                    f"sanitize=True or repro.analysis.sanitizer.escalate() "
                    f"for the exact event)",
                    time_ns=self.now,
                )
        if until is not None and until > self.now:
            self.now = until
        if self.watchdog is not None and not heap:
            self.watchdog(self)
        return dispatched

    def check_now(self) -> None:
        """Run every invariant check immediately (outside dispatch)."""
        failure = self.sanitizer.check() or self.sanitizer.check_ftls()
        if failure is not None:
            invariant, detail = failure
            raise SanitizerError(invariant, detail, time_ns=self.now)


def escalate(
    scenario: Callable[[bool | str], _T], *, stride: int = 64
) -> _T:
    """Run ``scenario`` strided; on violation, replay at full fidelity.

    ``scenario`` must build and run its simulation from the ``sanitize``
    value it is passed (e.g. ``lambda s: run_incast_cell(sim=
    Simulator(sanitize=s))``) and be deterministic — every simulation in
    this library is, for fixed seeds.  The strided leg is cheap
    (~1/stride of the checking cost); only if its sampled sweep reports
    a violation is the cell re-run with ``sanitize=True``, which stops
    at the exact first offending event.  No state rewind is needed —
    determinism *is* the rewind.

    Raises the full-fidelity :class:`SanitizerError` (chained to the
    strided one) when the replay reproduces the violation; re-raises the
    strided error annotated as non-reproducing otherwise (a scenario
    that draws entropy outside the simulator could cause this).
    Returns the strided run's result when no violation fires.
    """
    try:
        return scenario(f"stride:{stride}")
    except SanitizerError as coarse:
        result = scenario(True)  # a precise SanitizerError chains implicitly
        del result
        raise SanitizerError(
            coarse.invariant,
            f"{coarse.detail} (violation did not reproduce under the "
            f"full-fidelity re-run; is the scenario deterministic?)",
            time_ns=coarse.time_ns,
            site=coarse.site,
        ) from coarse


def env_sanitize_enabled(value: str | None) -> bool:
    """Interpret the ``REPRO_SANITIZE`` environment value as on/off."""
    return bool(env_sanitize_mode(value))


def env_sanitize_mode(value: str | None) -> bool | str:
    """Interpret ``REPRO_SANITIZE``: off, full (``True``), or ``stride:K``."""
    if value is None:
        return False
    stripped = value.strip().lower()
    if stripped in ("", "0", "false", "no", "off"):
        return False
    if stripped.startswith("stride:"):
        return stripped
    return True
