"""Units-of-measure dataflow checker (rules SIM101–SIM104).

The simulator moves quantities between modules as bare numbers; the
classic reproduction bug is mixing their units — a DCQCN rate update in
Gbps meeting link serialisation in bytes/ns, a CLI duration in ms fed
to an engine that counts ns.  This pass assigns each expression a unit
from three sources, in priority order:

1. signature annotations using the :mod:`repro.core.units` aliases
   (collected into the :class:`~repro.analysis.callgraph.ProjectIndex`);
2. the repo's name-suffix convention (``_ns``, ``_bytes``, ``_gbps``,
   ...) for unannotated locals, attributes, and function names;
3. a small algebra over arithmetic: ``bytes / ns -> bytes_per_ns``,
   ``bytes / bytes_per_ns -> ns``, ``bytes_per_ns * ns -> bytes``,
   ``x / x -> ratio``, with the conversion constants of
   :mod:`repro.sim.units` (``US``, ``MS``, ``KIB``, ``GBPS``...)
   rewriting units on multiplication/division.

Only **known-known conflicts** are reported: an unknown unit never
flags, so partial inference degrades to silence rather than noise.

Rules
-----
SIM101
    Unit-mixing arithmetic: ``+``/``-``/``%``/comparison between two
    *different* known units (``delay_ns + delay_ms``), assigning an
    expression of one known unit to a name whose suffix declares
    another, multiplying a quantity by a conversion factor that expects
    a different source unit (``duration_ms * US``), or ``max``/``min``
    over mixed units.
SIM102
    Call-argument unit mismatch: passing a known unit into a parameter
    annotated (or suffix-named) with a different one.
SIM103
    Return unit mismatch: returning a known unit from a function whose
    annotation or name-suffix declares a different one.
SIM104
    Unconverted rate↔latency math: a ``gbps`` quantity meeting bytes or
    time in ``*``/``/`` without going through ``GBPS``/
    ``gbps_to_bytes_per_ns`` first (``size / rate_gbps`` is bits-vs-
    bytes wrong by 8 and seconds-vs-ns wrong by 1e9).

Modules in :data:`repro.analysis.manifest.UNITS_EXEMPT_MODULES` (the
conversion helpers themselves) are exempt from SIM101/SIM104.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    ParamInfo,
    ProjectIndex,
    annotation_to_unit,
)
from repro.analysis.manifest import UNITS_EXEMPT_MODULES
from repro.analysis.simlint import Emitter, Violation, make_emitter
from repro.core.units import CONVERSION_FACTORS, DIMENSIONLESS, suffix_unit

__all__ = ["UNIT_RULES", "check_units"]

UNIT_RULES: dict[str, str] = {
    "SIM101": "unit-mixing arithmetic between different known units",
    "SIM102": "call argument unit does not match the parameter's unit",
    "SIM103": "return value unit does not match the declared return unit",
    "SIM104": "unconverted rate<->latency math (gbps meets bytes/time)",
}

#: Builtins transparent to units: unit(f(x)) == unit(x).
_PRESERVING_CALLS = frozenset({"int", "float", "abs", "round"})
#: Builtins whose result joins their arguments' units.
_JOINING_CALLS = frozenset({"max", "min"})
#: Units SIM104 guards against meeting ``gbps`` raw.
_RATE_CLASH = frozenset({"bytes", "ns", "us", "ms", "s"})


def _scoped(module: str) -> bool:
    # Unlike the purity rules (scoped to the packages that run inside
    # the simulated clock), unit conventions hold project-wide: the
    # classic ms-vs-ns bug lives in experiment drivers and the CLI.
    return module == "repro" or module.startswith("repro.")


class _FunctionUnits:
    """One intraprocedural forward pass over a function body."""

    def __init__(
        self,
        index: ProjectIndex,
        fn: FunctionInfo,
        emit: Emitter,
        *,
        exempt_mixing: bool,
    ) -> None:
        self.index = index
        self.fn = fn
        # ast.walk visits an inner BinOp both directly and through its
        # parent's unit_of recursion; dedupe on the emission site so each
        # conflict is reported once.
        seen: set[tuple[str, int, int, str]] = set()

        def emit_once(rule: str, node: ast.AST, message: str) -> None:
            key = (
                rule,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                message,
            )
            if key not in seen:
                seen.add(key)
                emit(rule, node, message)

        self.emit: Emitter = emit_once
        self.exempt_mixing = exempt_mixing
        self.enclosing: ClassInfo | None = (
            index.classes.get(fn.cls) if fn.cls is not None else None
        )
        self.type_env = index.env_for_function(fn)
        self.units: dict[str, str] = {}
        for param in fn.params:
            if param.unit is not None:
                self.units[param.name] = param.unit

    # -- unit resolution ------------------------------------------------
    def _factor_of(self, node: ast.expr) -> tuple[str | None, str] | None:
        """``MS`` / ``units.MS`` -> its (source, result) conversion pair."""
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is None or name not in CONVERSION_FACTORS:
            return None
        return CONVERSION_FACTORS[name]

    def unit_of(self, node: ast.expr) -> str | None:
        """Best-effort unit of an expression (None = unknown)."""
        if isinstance(node, ast.Name):
            if self._factor_of(node) is not None:
                return None  # factors only mean something in * and /
            known = self.units.get(node.id)
            if known is not None:
                return known
            return suffix_unit(node.id)
        if isinstance(node, ast.Attribute):
            if self._factor_of(node) is not None:
                return None
            owner = self.index.type_of_expr(
                node.value,
                module=self.fn.module,
                enclosing=self.enclosing,
                env=self.type_env,
            )
            if owner is not None:
                declared = owner.attr_units.get(node.attr)
                if declared is not None:
                    return declared
            return suffix_unit(node.attr)
        if isinstance(node, ast.Subscript):
            # A container's unit names its elements: self._inflight_ns[k].
            return self.unit_of(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand)
        if isinstance(node, ast.IfExp):
            body = self.unit_of(node.body)
            orelse = self.unit_of(node.orelse)
            return body if body == orelse else None
        if isinstance(node, ast.Call):
            return self._unit_of_call(node)
        if isinstance(node, ast.BinOp):
            return self._unit_of_binop(node)
        if isinstance(node, ast.Compare):
            self._check_compare(node)
            return None
        return None

    def _unit_of_call(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _PRESERVING_CALLS and node.args:
                return self.unit_of(node.args[0])
            if func.id in _JOINING_CALLS and node.args:
                return self._join(node, [self.unit_of(a) for a in node.args])
        resolved = self.index.resolve_call(
            node,
            module=self.fn.module,
            enclosing=self.enclosing,
            env=self.type_env,
        )
        if resolved is not None:
            return resolved.return_unit
        if isinstance(func, ast.Attribute):
            return suffix_unit(func.attr)
        if isinstance(func, ast.Name):
            return suffix_unit(func.id)
        return None

    def _join(self, node: ast.expr, units: list[str | None]) -> str | None:
        known = [u for u in units if u is not None]
        if not known:
            return None
        first = known[0]
        if any(u != first for u in known[1:]):
            if not self.exempt_mixing:
                self.emit(
                    "SIM101",
                    node,
                    f"max/min over mixed units ({', '.join(sorted(set(known)))})",
                )
            return None
        return first

    def _unit_of_binop(self, node: ast.BinOp) -> str | None:
        left_u = self.unit_of(node.left)
        right_u = self.unit_of(node.right)
        op = node.op
        if isinstance(op, ast.Mult):
            return self._unit_of_mult(node, left_u, right_u)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return self._unit_of_div(node, left_u, right_u)
        if isinstance(op, (ast.Add, ast.Sub, ast.Mod)):
            if (
                left_u is not None
                and right_u is not None
                and left_u != right_u
                and not self.exempt_mixing
            ):
                self.emit(
                    "SIM101",
                    node,
                    f"arithmetic mixes {left_u} with {right_u}",
                )
                return None
            return left_u if left_u is not None else right_u
        return None

    def _unit_of_mult(
        self, node: ast.BinOp, left_u: str | None, right_u: str | None
    ) -> str | None:
        # Conversion factors rewrite the unit: duration_ms * MS -> ns.
        for value_node, value_u, factor_node in (
            (node.left, left_u, node.right),
            (node.right, right_u, node.left),
        ):
            factor = self._factor_of(factor_node)
            if factor is None:
                continue
            source, result = factor
            if source is not None and value_u is not None and value_u != source:
                if value_u != result and not self.exempt_mixing:
                    self.emit(
                        "SIM101",
                        node,
                        f"multiplying a {value_u} quantity by a factor "
                        f"converting {source} (expected a {source} count)",
                    )
                return None
            return result
        if left_u is None and right_u is None:
            return None
        if "gbps" in (left_u, right_u) and not self.exempt_mixing:
            other = right_u if left_u == "gbps" else left_u
            if other in _RATE_CLASH or other == "bytes_per_ns":
                self.emit(
                    "SIM104",
                    node,
                    f"gbps multiplied by {other}: convert the rate first "
                    "(gbps_to_bytes_per_ns / GBPS)",
                )
                return None
        pair = {left_u, right_u}
        if pair == {"bytes_per_ns", "ns"}:
            return "bytes"
        if left_u in DIMENSIONLESS:
            return right_u
        if right_u in DIMENSIONLESS:
            return left_u
        if left_u is None:
            return right_u  # scalar * quantity keeps the unit
        if right_u is None:
            return left_u
        return None  # known x known with no defined product: unknown

    def _unit_of_div(
        self, node: ast.BinOp, left_u: str | None, right_u: str | None
    ) -> str | None:
        factor = self._factor_of(node.right)
        if factor is not None:
            # Dividing inverts the factor: elapsed_ns / MS -> ms count.
            source, result = factor
            if left_u is not None and left_u != result and not self.exempt_mixing:
                self.emit(
                    "SIM101",
                    node,
                    f"dividing a {left_u} quantity by a factor producing "
                    f"{result} (expected a {result} quantity)",
                )
                return None
            return source
        if right_u == "gbps" and not self.exempt_mixing:
            if left_u in _RATE_CLASH:
                self.emit(
                    "SIM104",
                    node,
                    f"{left_u} divided by gbps: convert the rate first "
                    "(gbps_to_bytes_per_ns / GBPS)",
                )
            return None
        if left_u == "gbps" and right_u in _RATE_CLASH and not self.exempt_mixing:
            self.emit(
                "SIM104",
                node,
                f"gbps divided by {right_u}: convert the rate first "
                "(gbps_to_bytes_per_ns / GBPS)",
            )
            return None
        if left_u is not None and left_u == right_u:
            return "ratio"
        if right_u in DIMENSIONLESS:
            return left_u
        if right_u == "bytes_per_ns":
            # Anything divided by a rate is a duration; the numerator is
            # bytes by construction on every pacing path.
            return "ns"
        if left_u == "bytes" and right_u == "ns":
            return "bytes_per_ns"
        if right_u is None:
            return left_u  # quantity / scalar keeps the unit
        return None

    def _check_compare(self, node: ast.Compare) -> None:
        if self.exempt_mixing:
            return
        operands = [node.left, *node.comparators]
        units = [self.unit_of(o) for o in operands]
        known = [(o, u) for o, u in zip(operands, units) if u is not None]
        for (_, prev_u), (curr, curr_u) in zip(known, known[1:]):
            if prev_u != curr_u:
                self.emit(
                    "SIM101",
                    node,
                    f"comparison mixes {prev_u} with {curr_u}",
                )
                return

    # -- statement walk -------------------------------------------------
    def check(self) -> None:
        for stmt in ast.walk(self.fn.node):
            if isinstance(stmt, ast.Assign):
                self._check_assign(stmt)
            elif isinstance(stmt, ast.AnnAssign):
                self._check_ann_assign(stmt)
            elif isinstance(stmt, ast.AugAssign):
                self._check_aug_assign(stmt)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                self._check_return(stmt)
            elif isinstance(stmt, ast.Call):
                self._check_call_args(stmt)
            elif isinstance(stmt, ast.expr) and not isinstance(
                stmt, (ast.Call, ast.Lambda)
            ):
                # Evaluate for the side effect of mixing checks inside
                # bare expressions (comparisons in asserts/ifs arrive
                # here through ast.walk).
                if isinstance(stmt, (ast.BinOp, ast.Compare)):
                    self.unit_of(stmt)

    def _target_unit(self, target: ast.expr) -> str | None:
        if isinstance(target, ast.Name):
            declared = self.units.get(target.id)
            return declared if declared is not None else suffix_unit(target.id)
        if isinstance(target, ast.Attribute):
            return self.unit_of(target)
        if isinstance(target, ast.Subscript):
            return self.unit_of(target.value)
        return None

    def _check_store(
        self, stmt: ast.stmt, target: ast.expr, value_u: str | None
    ) -> None:
        if value_u is None or self.exempt_mixing:
            return
        target_u = self._target_unit(target)
        if target_u is not None and target_u != value_u:
            self.emit(
                "SIM101",
                stmt,
                f"assigning a {value_u} value to a {target_u} target",
            )

    def _check_assign(self, stmt: ast.Assign) -> None:
        value_u = self.unit_of(stmt.value)
        for target in stmt.targets:
            self._check_store(stmt, target, value_u)
            if isinstance(target, ast.Name):
                unit = value_u if value_u is not None else suffix_unit(target.id)
                if unit is not None:
                    self.units[target.id] = unit

    def _check_ann_assign(self, stmt: ast.AnnAssign) -> None:
        declared = annotation_to_unit(stmt.annotation)
        if isinstance(stmt.target, ast.Name):
            if declared is None:
                declared = suffix_unit(stmt.target.id)
            if declared is not None:
                self.units[stmt.target.id] = declared
        if stmt.value is not None:
            value_u = self.unit_of(stmt.value)
            if (
                declared is not None
                and value_u is not None
                and declared != value_u
                and not self.exempt_mixing
            ):
                self.emit(
                    "SIM101",
                    stmt,
                    f"assigning a {value_u} value to a {declared} target",
                )

    def _check_aug_assign(self, stmt: ast.AugAssign) -> None:
        if self.exempt_mixing:
            return
        target_u = self._target_unit(stmt.target)
        value_u = self.unit_of(stmt.value)
        if target_u is None or value_u is None:
            return
        if isinstance(stmt.op, (ast.Add, ast.Sub, ast.Mod)):
            if target_u != value_u:
                self.emit(
                    "SIM101",
                    stmt,
                    f"augmented arithmetic mixes {target_u} with {value_u}",
                )

    def _check_return(self, stmt: ast.Return) -> None:
        declared = self.fn.return_unit
        if declared is None or stmt.value is None:
            return
        value_u = self.unit_of(stmt.value)
        if value_u is not None and value_u != declared:
            self.emit(
                "SIM103",
                stmt,
                f"returns a {value_u} value from a function declared "
                f"to return {declared}",
            )

    def _check_call_args(self, node: ast.Call) -> None:
        resolved = self.index.resolve_call(
            node,
            module=self.fn.module,
            enclosing=self.enclosing,
            env=self.type_env,
        )
        if resolved is None:
            return
        params = resolved.call_params
        by_name = {p.name: p for p in params}
        # Positional alignment breaks at the first *args; stop there.
        for pos, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                break
            if pos >= len(params):
                break
            self._check_one_arg(node, arg, params[pos], resolved)
        for kw in node.keywords:
            if kw.arg is None:  # **kwargs
                continue
            param = by_name.get(kw.arg)
            if param is not None:
                self._check_one_arg(node, kw.value, param, resolved)

    def _check_one_arg(
        self,
        call: ast.Call,
        arg: ast.expr,
        param: ParamInfo,
        resolved: FunctionInfo,
    ) -> None:
        if param.unit is None:
            return
        arg_u = self.unit_of(arg)
        if arg_u is not None and arg_u != param.unit:
            self.emit(
                "SIM102",
                call,
                f"argument '{param.name}' of {resolved.qualname} expects "
                f"{param.unit}, got {arg_u}",
            )


def check_units(index: ProjectIndex, graph: CallGraph) -> list[Violation]:
    """Run SIM101–SIM104 over every in-scope function of the index.

    The call graph is part of the signature for parity with the purity
    pass (and so call-resolution work is shared by the runner); the
    units pass itself propagates through signatures, which the index
    already carries.
    """
    del graph  # propagation happens through indexed signatures
    violations: list[Violation] = []
    for module in sorted(index.modules.values(), key=lambda m: m.name):
        if not _scoped(module.name):
            continue
        emit = make_emitter(module.source, module.path, violations)
        exempt = module.name in UNITS_EXEMPT_MODULES
        functions = [
            *module.functions.values(),
            *(
                fn
                for cls in module.classes.values()
                for fn in cls.methods.values()
            ),
        ]
        for fn in functions:
            if not fn.node.body:  # synthesised dataclass __init__
                continue
            _FunctionUnits(index, fn, emit, exempt_mixing=exempt).check()
    return violations
