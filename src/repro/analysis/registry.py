"""Unified SIM rule registry and CLI rule selection.

Every lint rule the driver can emit, grouped by the pass that computes
it.  ``repro lint --select SIM4 --ignore SIM203`` style selection
resolves here: tokens are rule-id prefixes (``SIM4`` -> SIM401–SIM404,
``SIM203`` -> itself) or group keys (``shards``), and the legacy
``--shards`` / ``--snapshots`` flags are sugar that adds the matching
group on top of the defaults.  A token matching nothing is an error —
a typo silently selecting zero rules would read as "clean".

SIM999 (file does not parse) is always active: a parse failure
undermines every other pass, so deselecting it can only hide findings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.purity import PURITY_RULES
from repro.analysis.shards import SHARD_RULES
from repro.analysis.simlint import RULES
from repro.analysis.snapshots import SNAPSHOT_RULES
from repro.analysis.units import UNIT_RULES

__all__ = [
    "ALL_RULES",
    "RULE_GROUPS",
    "RuleGroup",
    "expand_selection",
    "resolve_active_rules",
]


@dataclass(frozen=True)
class RuleGroup:
    """One lint pass and the rules it emits."""

    key: str  # selection token (``--select shards``)
    title: str
    rules: tuple[str, ...]
    #: Enabled with no ``--select`` and no flag.
    default: bool
    #: CLI flag that adds this group over the defaults, if any.
    flag: str | None = None


RULE_GROUPS: tuple[RuleGroup, ...] = (
    RuleGroup(
        "core", "per-file determinism rules", tuple(sorted(RULES)), True
    ),
    RuleGroup(
        "units", "units-of-measure dataflow", tuple(sorted(UNIT_RULES)), True
    ),
    RuleGroup(
        "purity", "event-callback purity", tuple(sorted(PURITY_RULES)), True
    ),
    RuleGroup(
        "shards", "shard safety (effect summaries)",
        tuple(sorted(SHARD_RULES)), False, flag="--shards",
    ),
    RuleGroup(
        "snapshots", "snapshot safety (checkpointability)",
        tuple(sorted(SNAPSHOT_RULES)), False, flag="--snapshots",
    ),
)

#: Every rule the whole-program driver can emit.
ALL_RULES: dict[str, str] = {
    **RULES, **UNIT_RULES, **PURITY_RULES, **SHARD_RULES, **SNAPSHOT_RULES
}

_GROUPS_BY_KEY = {g.key: g for g in RULE_GROUPS}


def expand_selection(tokens: list[str]) -> frozenset[str]:
    """Rule ids matching the given tokens (comma-splittable).

    A token is a group key (``snapshots``) or a rule-id prefix
    (``SIM4``, ``sim203``).  Raises ``ValueError`` on a token that
    matches nothing.
    """
    out: set[str] = set()
    for raw in tokens:
        for token in raw.split(","):
            token = token.strip()
            if not token:
                continue
            group = _GROUPS_BY_KEY.get(token.lower())
            if group is not None:
                out.update(group.rules)
                continue
            prefix = token.upper()
            matches = {r for r in ALL_RULES if r.startswith(prefix)}
            if not matches:
                raise ValueError(
                    f"rule selector {token!r} matches no SIM rule or group "
                    f"(groups: {', '.join(sorted(_GROUPS_BY_KEY))})"
                )
            out.update(matches)
    return frozenset(out)


def resolve_active_rules(
    *,
    select: list[str] | None = None,
    ignore: list[str] | None = None,
    shards: bool = False,
    snapshots: bool = False,
) -> frozenset[str]:
    """The rule set one lint run should emit.

    Without ``select``, the default groups run, plus any group whose
    sugar flag (``shards`` / ``snapshots``) is set.  With ``select``,
    only the selection runs — the flags still add their group, so
    ``--select SIM001 --shards`` means SIM001 + SIM301–304.  ``ignore``
    is subtracted last and wins.  SIM999 is never deselectable.
    """
    if select:
        active = set(expand_selection(select))
    else:
        active = {
            rule
            for group in RULE_GROUPS
            if group.default
            for rule in group.rules
        }
    if shards:
        active.update(_GROUPS_BY_KEY["shards"].rules)
    if snapshots:
        active.update(_GROUPS_BY_KEY["snapshots"].rules)
    if ignore:
        active -= expand_selection(ignore)
    active.add("SIM999")
    return frozenset(active)
