"""simlint — AST-based determinism linter for the simulation packages.

The DES core guarantees bit-identical replay (golden dispatch traces,
``workers=N`` == ``workers=1`` sweeps) only as long as every module
upholds a handful of invariants that nothing in CPython enforces.  This
linter turns them into checkable rules, using only :mod:`ast`:

``SIM001``
    No wall-clock access in simulation packages: importing :mod:`time`
    or :mod:`datetime` there means some code path can observe host time,
    which is never reproducible.  Wall-clock *measurement* belongs in
    :mod:`repro.profiling` / :mod:`repro.parallel`, which are exempt.
``SIM002``
    All randomness flows through :mod:`repro.sim.rng`
    (:func:`~repro.sim.rng.make_rng` / :func:`~repro.sim.rng.spawn_rngs`).
    Importing :mod:`random` or calling ``np.random.*`` constructors
    anywhere else creates an unseeded (or separately-seeded) stream that
    breaks cross-component stream independence.
``SIM003``
    No iteration over ``set`` values or ``dict.keys()`` calls in
    simulation modules: set order is salted per process, so iterating
    one inside an event callback reorders scheduling between runs.
    Iterate a ``sorted(...)`` snapshot instead (the NIC backlogged-flow
    pump is the reference pattern).
``SIM004``
    Classes listed in :data:`repro.analysis.manifest.SLOTS_MANIFEST`
    (one instance per packet/event/flow/transaction) must declare
    ``__slots__`` — directly or via ``@dataclass(slots=True)``.
``SIM005``
    No bare ``except:`` and no exception handler whose body is only
    ``pass``/``...`` in simulation packages: a swallowed exception in a
    dispatch path leaves the model silently corrupted mid-run.

Files map to module names from their ``src/`` path; files outside
``src/`` (lint-rule fixtures, scratch scripts) can opt in with a
``# simlint: package=repro.net.foo`` directive near the top.  Individual
lines are suppressed with ``# simlint: ignore[SIM001]`` (comma-list or
``*`` for all rules).
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.analysis.manifest import (
    RNG_EXEMPT_MODULES,
    RNG_EXTRA_PACKAGES,
    SIM_PACKAGES,
    SLOTS_MANIFEST,
)

__all__ = [
    "RULES",
    "Violation",
    "comment_lines",
    "format_violations",
    "lint_file",
    "lint_paths",
    "make_emitter",
    "module_name_of",
    "suppressed_rules",
]

#: Rule code -> one-line description (the ``repro lint`` help text).
RULES: dict[str, str] = {
    "SIM001": "no wall-clock (time/datetime) access in simulation packages",
    "SIM002": "randomness must flow through repro.sim.rng, not random/np.random",
    "SIM003": "no iteration over sets or dict.keys() in simulation modules",
    "SIM004": "hot-path classes in the manifest must declare __slots__",
    "SIM005": "no bare except or swallowed exceptions in simulation packages",
    "SIM999": "file does not parse",
}

_PACKAGE_DIRECTIVE = re.compile(r"#\s*simlint:\s*package=([\w.]+)")
_IGNORE_DIRECTIVE = re.compile(r"#\s*simlint:\s*ignore\[([\w\s,*]+)\]")

_WALLCLOCK_MODULES = ("time", "datetime")
_NUMPY_ALIASES = ("np", "numpy")


@dataclass(frozen=True)
class Violation:
    """One lint finding."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def _in_packages(module: str, packages: Iterable[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in packages)


def comment_lines(source: str) -> dict[int, str]:
    """Line number -> comment text, from the tokenizer.

    Directives are only honoured inside *actual comments* — a file that
    merely mentions ``# simlint: package=...`` in a docstring or string
    literal must not be re-attributed.  Returns an empty map when the
    file cannot be tokenized (the parse error is reported separately).
    """
    out: dict[int, str] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # keep the comments collected before the bad token
    return out


def _first_code_line(source: str) -> int:
    """Line of the first non-docstring statement (``sys.maxsize`` if none).

    A ``# simlint: package=`` directive is a *file header* declaration:
    it is honoured only above this line, so a stray mention later in the
    file (scratch code, a commented-out experiment) cannot silently put
    the whole file in lint scope.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return 1 << 62
    body = tree.body
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    return body[0].lineno if body else 1 << 62


def module_name_of(path: Path, source: str) -> str | None:
    """The dotted repro module a file belongs to, or None.

    Resolution order: a ``# simlint: package=...`` directive in a
    comment above the first (non-docstring) statement wins (fixtures),
    then the ``.../src/repro/...`` path shape.
    """
    first_code = _first_code_line(source)
    for lineno, comment in sorted(comment_lines(source).items()):
        if lineno >= first_code:
            break
        m = _PACKAGE_DIRECTIVE.search(comment)
        if m:
            return m.group(1)
    parts = path.resolve().parts
    for anchor in range(len(parts) - 1, -1, -1):
        if parts[anchor] == "src" and anchor + 1 < len(parts):
            mod = ".".join(parts[anchor + 1 :])
            if mod.endswith(".py"):
                mod = mod[: -len(".py")]
            if mod.endswith(".__init__"):
                mod = mod[: -len(".__init__")]
            if mod.startswith("repro"):
                return mod
    return None


def suppressed_rules(source: str) -> dict[int, frozenset[str]]:
    """Line number -> rules suppressed on that line (comment tokens only)."""
    out: dict[int, frozenset[str]] = {}
    for lineno, comment in comment_lines(source).items():
        m = _IGNORE_DIRECTIVE.search(comment)
        if m:
            rules = frozenset(r.strip() for r in m.group(1).split(",") if r.strip())
            out[lineno] = rules
    return out


def suppression_lines(node: ast.AST) -> range:
    """Physical lines on which an ``ignore[...]`` directive covers ``node``.

    A violation on a multi-line statement may carry its directive on any
    continuation line; a flagged class/function accepts it on a
    decorator line or the header, but *not* deep inside the body (that
    would let one directive mute a whole class).
    """
    lineno = getattr(node, "lineno", 0)
    if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
        start = min(
            (deco.lineno for deco in node.decorator_list), default=lineno
        )
        end = node.body[0].lineno - 1 if node.body else lineno
        return range(start, max(end, lineno) + 1)
    end_lineno = getattr(node, "end_lineno", None) or lineno
    return range(lineno, end_lineno + 1)


#: Signature of the per-rule emit callbacks.
Emitter = Callable[[str, ast.AST, str], None]


def _function_directive_spans(
    source: str, suppressed: dict[int, frozenset[str]]
) -> list[tuple[int, int, frozenset[str]]]:
    """``(first_line, last_line, rules)`` spans from function headers.

    A directive on a function's decorator line, its ``def`` line, any
    continuation line of a multi-line signature, or a comment line
    directly under the signature (before the first body statement)
    scopes to the whole function body — the decorator/signature *is*
    the function, not one physical line.  Deeper inside the body a
    directive only covers its own statement.  Classes stay
    line-scoped: one directive must not mute a whole class body
    (``suppression_lines`` already accepts a class-header directive
    for findings on the class itself).
    """
    if not suppressed:
        return []
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []
    spans: list[tuple[int, int, frozenset[str]]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        start = min(
            (deco.lineno for deco in node.decorator_list), default=node.lineno
        )
        header_end = node.body[0].lineno - 1 if node.body else node.lineno
        header_end = max(header_end, node.lineno)
        rules: frozenset[str] = frozenset()
        for line in range(start, header_end + 1):
            rules = rules | suppressed.get(line, frozenset())
        if rules:
            end = getattr(node, "end_lineno", None) or header_end
            spans.append((start, end, rules))
    return spans


def make_emitter(
    source: str, display: str, violations: list[Violation]
) -> Emitter:
    """Build an emit callback honouring ``ignore[...]`` directives."""
    suppressed = suppressed_rules(source)
    func_spans = _function_directive_spans(source, suppressed)

    def emit(rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        for covered in suppression_lines(node):
            rules_here = suppressed.get(covered)
            if rules_here and (rule in rules_here or "*" in rules_here):
                return
        for span_start, span_end, rules_here in func_spans:
            if span_start <= line <= span_end and (
                rule in rules_here or "*" in rules_here
            ):
                return
        violations.append(Violation(rule, display, line, col, message))

    return emit


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chains as a string; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# -- SIM001 / SIM002: imports and calls --------------------------------------

def _check_imports_and_calls(tree: ast.AST, module: str, emit: Emitter) -> None:
    sim_scope = _in_packages(module, SIM_PACKAGES)
    rng_scope = (
        _in_packages(module, SIM_PACKAGES + RNG_EXTRA_PACKAGES)
        and module not in RNG_EXEMPT_MODULES
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if sim_scope and root in _WALLCLOCK_MODULES:
                    emit(
                        "SIM001", node,
                        f"simulation module {module} imports {alias.name!r}; "
                        "use the simulated clock (Simulator.now), not wall time",
                    )
                if rng_scope and root == "random":
                    emit(
                        "SIM002", node,
                        f"{module} imports {alias.name!r}; derive randomness from "
                        "repro.sim.rng.make_rng/spawn_rngs instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if sim_scope and root in _WALLCLOCK_MODULES:
                emit(
                    "SIM001", node,
                    f"simulation module {module} imports from {node.module!r}; "
                    "use the simulated clock (Simulator.now), not wall time",
                )
            if rng_scope and root == "random":
                emit(
                    "SIM002", node,
                    f"{module} imports from {node.module!r}; derive randomness "
                    "from repro.sim.rng.make_rng/spawn_rngs instead",
                )
        elif isinstance(node, ast.Call):
            name = _dotted(node.func)
            if not name:
                continue
            if rng_scope and _is_numpy_random_call(name):
                emit(
                    "SIM002", node,
                    f"direct numpy.random call {name!r}; route it through "
                    "repro.sim.rng (make_rng/spawn_rngs)",
                )


def _is_numpy_random_call(dotted: str) -> bool:
    parts = dotted.split(".")
    return len(parts) >= 3 and parts[0] in _NUMPY_ALIASES and parts[1] == "random"


# -- SIM003: unordered iteration ---------------------------------------------

class _SetNames(ast.NodeVisitor):
    """Collects names/attributes assigned set-typed values in a module."""

    def __init__(self) -> None:
        self.names: set[str] = set()

    def _target_key(self, target: ast.expr) -> str | None:
        # Attributes are tracked only on ``self`` — matching bare attribute
        # names across unrelated objects produces false positives.
        if isinstance(target, ast.Name):
            return target.id
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return f"self.{target.attr}"
        return None

    @staticmethod
    def _is_set_value(value: ast.expr | None) -> bool:
        if value is None:
            return False
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return value.func.id in ("set", "frozenset")
        return False

    @staticmethod
    def _is_set_annotation(annotation: ast.expr) -> bool:
        base = annotation.value if isinstance(annotation, ast.Subscript) else annotation
        if isinstance(base, ast.Name):
            return base.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
        if isinstance(base, ast.Attribute):
            return base.attr in ("Set", "FrozenSet", "AbstractSet")
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_value(node.value):
            for target in node.targets:
                key = self._target_key(target)
                if key:
                    self.names.add(key)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._is_set_value(node.value) or self._is_set_annotation(node.annotation):
            key = self._target_key(node.target)
            if key:
                self.names.add(key)
        self.generic_visit(node)


def _check_unordered_iteration(tree: ast.AST, emit: Emitter) -> None:
    collector = _SetNames()
    collector.visit(tree)
    set_names = collector.names

    def flag_iter(iter_node: ast.expr) -> None:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            emit("SIM003", iter_node, "iterating a set literal; iterate sorted(...)")
            return
        if isinstance(iter_node, ast.Call):
            if isinstance(iter_node.func, ast.Name) and iter_node.func.id in (
                "set",
                "frozenset",
            ):
                emit(
                    "SIM003", iter_node,
                    "iterating a set(...) construction; iterate sorted(...)",
                )
            elif (
                isinstance(iter_node.func, ast.Attribute)
                and iter_node.func.attr == "keys"
                and not iter_node.args
            ):
                emit(
                    "SIM003", iter_node,
                    "iterating .keys(); iterate the dict (insertion order) or "
                    "sorted(...) when order must be id-stable",
                )
            return
        key: str | None = None
        if isinstance(iter_node, ast.Name):
            key = iter_node.id
        elif (
            isinstance(iter_node, ast.Attribute)
            and isinstance(iter_node.value, ast.Name)
            and iter_node.value.id == "self"
        ):
            key = f"self.{iter_node.attr}"
        if key is not None and key in set_names:
            emit(
                "SIM003", iter_node,
                f"iterating set-typed {key!r}; set order is salted per process — "
                "iterate sorted(...) instead",
            )

    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            flag_iter(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            for gen in node.generators:
                flag_iter(gen.iter)


# -- SIM004: __slots__ manifest ----------------------------------------------

def _class_declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                return True
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call):
            name = _dotted(deco.func)
            if name and name.split(".")[-1] == "dataclass":
                for kw in deco.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
    return False


def _check_slots_manifest(tree: ast.AST, module: str, emit: Emitter) -> None:
    required = SLOTS_MANIFEST.get(module)
    if not required:
        return
    classes = {
        node.name: node for node in ast.walk(tree) if isinstance(node, ast.ClassDef)
    }
    for name in required:
        node = classes.get(name)
        if node is None:
            emit(
                "SIM004", tree,
                f"manifest class {module}.{name} not found — update "
                "repro.analysis.manifest.SLOTS_MANIFEST if it moved",
            )
        elif not _class_declares_slots(node):
            emit(
                "SIM004", node,
                f"hot-path class {name} must declare __slots__ "
                "(directly or via @dataclass(slots=True))",
            )


# -- SIM005: exception hygiene -----------------------------------------------

def _check_exception_hygiene(tree: ast.AST, emit: Emitter) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            emit(
                "SIM005", node,
                "bare except: in a simulation package; catch specific exceptions",
            )
        if all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in node.body
        ):
            emit(
                "SIM005", node,
                "exception handler swallows errors (body is pass/...); a fault "
                "in a dispatch path must not silently corrupt the model",
            )


# -- driver -------------------------------------------------------------------

def lint_source(source: str, path: Path) -> list[Violation]:
    """Lint one file's source; returns findings (possibly empty)."""
    display = str(path)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [
            Violation(
                "SIM999", display, exc.lineno or 0, exc.offset or 0,
                f"file does not parse: {exc.msg}",
            )
        ]
    module = module_name_of(path, source)
    if module is None:
        return []
    violations: list[Violation] = []
    emit = make_emitter(source, display, violations)

    _check_imports_and_calls(tree, module, emit)
    if _in_packages(module, SIM_PACKAGES):
        _check_unordered_iteration(tree, emit)
        _check_exception_hygiene(tree, emit)
    _check_slots_manifest(tree, module, emit)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def lint_file(path: Path) -> list[Violation]:
    return lint_source(path.read_text(), path)


def _iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Iterable[str | Path]) -> list[Violation]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    violations: list[Violation] = []
    for path in _iter_python_files(paths):
        violations.extend(lint_file(path))
    return violations


def format_violations(violations: list[Violation], *, fmt: str = "text") -> str:
    if fmt == "json":
        return json.dumps([v.as_dict() for v in violations], indent=2)
    if fmt == "github":
        # GitHub Actions workflow commands: each line becomes an
        # annotation on the offending file/line in the PR diff view.
        return "\n".join(
            f"::error file={v.path},line={v.line},col={v.col},"
            f"title={v.rule}::{v.message}"
            for v in violations
        )
    if not violations:
        return "simlint: no violations"
    lines = [v.format() for v in violations]
    lines.append(f"simlint: {len(violations)} violation(s)")
    return "\n".join(lines)
