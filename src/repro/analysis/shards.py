"""Shard-safety rules (SIM301–SIM304) over the effect summaries.

The sharding plan (ROADMAP item 1, after "Scalable Tail Latency
Estimation for Data Center Networks") places each component on a shard
by its owner domain (:data:`repro.analysis.manifest.COMPONENT_CLASSES`)
and lets shards run ahead of each other by exactly the propagation
delay of the links between them.  That is only sound when:

SIM301
    An event callback rooted on component A never writes state owned by
    a different-domain component C except through C's declared API.
    This is SIM202 with full interprocedural reach: the pass flags the
    *call site* where a dispatch-reachable method of A enters a private
    (``_``-prefixed) method of C whose transitive summary writes C's
    own state.  Public methods and registered callbacks absorb their
    own-class writes (see :mod:`repro.analysis.effects`), so sanctioned
    API chains stay silent no matter how deep they go.
SIM302
    A schedule whose callback's synchronous call tree escapes the
    caller's shard (its touch-domains leave
    :data:`repro.analysis.manifest.SHARD_REACH`, or it crosses a
    structural-dispatch boundary — a Protocol receiver / duck-wired
    method, i.e. the far side of a wire) must carry a delay that is
    provably at least the connecting link's propagation delay: the
    delay expression must be built from a ``*delay_ns`` link attribute.
    A constant, zero, or statically-opaque delay on such an edge is a
    lookahead violation — the one bug class that makes a conservative
    parallel run silently diverge.
SIM303
    RNG lineage: a generator that does not descend from
    :func:`repro.sim.rng.make_rng` / :func:`~repro.sim.rng.spawn_rngs`
    must not reach a component constructor, and one stream must not be
    shared across two component instances — shared streams couple
    shards through draw order.
SIM304
    Order-sensitive float accumulation over an unordered collection in
    dispatch-reachable code, *wherever* it lives: float addition does
    not commute, so a salted set order changes the sum bit-for-bit.
    (SIM003 already bans set iteration inside the simulation packages;
    this closes the gap for reachable code outside them.)

As everywhere in :mod:`repro.analysis`, only known-known conflicts
fire: unresolvable types, opaque callbacks, and unattributed modules
degrade to silence, not noise.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import CallGraph, FunctionInfo, ProjectIndex
from repro.analysis.effects import EffectMap
from repro.analysis.manifest import (
    COMPONENT_CLASSES,
    RNG_EXEMPT_MODULES,
    RNG_EXTRA_PACKAGES,
    SHARD_REACH,
    SIM_PACKAGES,
)
from repro.analysis.simlint import Emitter, Violation, make_emitter
from repro.analysis.simlint import _SetNames  # shared set-typing heuristics

__all__ = ["SHARD_RULES", "check_shards"]

SHARD_RULES: dict[str, str] = {
    "SIM301": (
        "no cross-domain component writes outside the declared API "
        "(interprocedural)"
    ),
    "SIM302": (
        "cross-shard schedules must carry at least the link propagation "
        "delay (lookahead)"
    ),
    "SIM303": "rng streams must be make_rng/spawn_rngs lineage, one per component",
    "SIM304": (
        "no order-sensitive float accumulation over unordered collections "
        "in dispatch-reachable code"
    ),
}

_RNG_FACTORIES = frozenset({"make_rng", "spawn_rngs"})
#: numpy constructors whose result is an out-of-lineage stream.
_RAW_GENERATORS = frozenset({"default_rng", "Generator", "RandomState"})


def _scoped(module: str, packages: tuple[str, ...] = SIM_PACKAGES) -> bool:
    return any(module == p or module.startswith(p + ".") for p in packages)


class _Emitters:
    """Per-module emit callbacks, built lazily."""

    def __init__(self, index: ProjectIndex, violations: list[Violation]) -> None:
        self.index = index
        self.violations = violations
        self._cache: dict[str, Emitter] = {}

    def for_module(self, module: str) -> Emitter | None:
        emit = self._cache.get(module)
        if emit is None:
            mod = self.index.modules.get(module)
            if mod is None:
                return None
            emit = make_emitter(mod.source, mod.path, self.violations)
            self._cache[module] = emit
        return emit


# ---------------------------------------------------------------------------
# SIM301 — interprocedural cross-domain writes
# ---------------------------------------------------------------------------

def _check_boundary_writes(
    index: ProjectIndex,
    graph: CallGraph,
    effects: EffectMap,
    emitters: _Emitters,
) -> None:
    reachable = graph.reachable_from_dispatch()
    for bc in effects.boundary_calls:
        caller = index.functions.get(bc.caller)
        if caller is None or caller.qualname not in reachable:
            continue
        if not _scoped(caller.module):
            continue
        if not effects.summary(bc.callee).writes_to(bc.callee_cls):
            continue
        emit = emitters.for_module(caller.module)
        if emit is None:
            continue
        caller_domain = COMPONENT_CLASSES.get(caller.cls or "", "?")
        callee_name = bc.callee.rsplit(".", 1)[-1]
        cls_name = bc.callee_cls.rsplit(".", 1)[-1]
        # Re-anchor on the recorded location (the emitter needs a node).
        anchor = ast.Expr(value=ast.Constant(value=None))
        anchor.lineno = bc.line
        anchor.col_offset = bc.col
        anchor.end_lineno = bc.line
        emit(
            "SIM301",
            anchor,
            f"dispatch-reachable {caller_domain!s}-domain callback reaches "
            f"into {cls_name}.{callee_name} (private, "
            f"{bc.callee_domain} domain) which writes {cls_name} state; "
            f"use a public {cls_name} method or schedule the effect",
        )


# ---------------------------------------------------------------------------
# SIM302 — lookahead: cross-shard schedules need the link delay
# ---------------------------------------------------------------------------

def _strip_now(expr: ast.expr) -> ast.expr:
    """``sim.now + X`` (a ``schedule_at`` absolute time) -> ``X``."""
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        for side, other in ((expr.left, expr.right), (expr.right, expr.left)):
            if (
                isinstance(side, ast.Attribute) and side.attr == "now"
            ) or (isinstance(side, ast.Name) and side.id == "now"):
                return other
    return expr


def _carries_link_delay(expr: ast.expr) -> bool:
    """The delay expression is built from a link-propagation attribute.

    ``self.delay_ns``, ``link.delay_ns``, ``base + link.delay_ns`` all
    qualify: ``*delay_ns`` is the canonical unit-suffixed name of the
    propagation delay (and of nothing else in the repo) — the exact
    quantity the conservative lookahead is defined by.
    """
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute) and node.attr.endswith("delay_ns"):
            return True
        if isinstance(node, ast.Name) and node.id.endswith("delay_ns"):
            return True
    return False


def _check_lookahead(
    index: ProjectIndex,
    graph: CallGraph,
    effects: EffectMap,
    emitters: _Emitters,
) -> None:
    for site in graph.schedule_sites:
        caller = index.functions.get(site.caller)
        if caller is None or caller.cls not in COMPONENT_CLASSES:
            continue
        if not _scoped(caller.module) or site.target is None:
            continue
        summary = effects.summary(site.target)
        caller_domain = COMPONENT_CLASSES[caller.cls]
        reach = SHARD_REACH.get(caller_domain, frozenset())
        escapes = (summary.touch_domains | summary.remote_domains) - reach
        if not escapes:
            continue
        delay = site.delay
        if delay is not None:
            delay = _strip_now(delay)
        if delay is not None and _carries_link_delay(delay):
            continue
        emit = emitters.for_module(caller.module)
        if emit is None:
            continue
        target_name = site.target.rsplit(".", 1)[-1]
        emit(
            "SIM302",
            site.node,
            f"schedule of {target_name} from the {caller_domain} domain "
            f"reaches foreign shard domains {sorted(escapes)} but its delay "
            "is not provably >= the link propagation delay; use the "
            "connecting link's delay_ns (conservative lookahead) or keep "
            "the effect shard-local",
        )


# ---------------------------------------------------------------------------
# SIM303 — rng lineage and sharing
# ---------------------------------------------------------------------------

def _call_tail(index: ProjectIndex, module: str, node: ast.Call) -> str | None:
    """Resolved last-segment name of a call head (``np.random.default_rng``
    -> ``default_rng``; ``make_rng`` through an import alias -> ``make_rng``).
    """
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        mod = index.modules.get(module)
        target = mod.imports.get(func.id) if mod is not None else None
        return (target or func.id).rsplit(".", 1)[-1]
    return None


class _RngLineage:
    """SIM303 over one function: taint + constructor-arg tracking."""

    def __init__(
        self, index: ProjectIndex, fn: FunctionInfo, emit: Emitter
    ) -> None:
        self.index = index
        self.fn = fn
        self.emit = emit
        self.enclosing = (
            index.classes.get(fn.cls) if fn.cls is not None else None
        )
        self.env = index.env_for_function(fn)
        self.raw: set[str] = set()  # out-of-lineage generator locals
        self.lineage: set[str] = set()  # make_rng/spawn_rngs-derived locals
        #: rng key -> component constructor call nodes it was passed to.
        self.uses: dict[str, list[ast.Call]] = {}

    def check(self) -> None:
        for stmt in ast.walk(self.fn.node):
            if isinstance(stmt, ast.Assign):
                self._track_assign(stmt)
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Call):
                self._check_constructor(node)
        for key, sites in sorted(self.uses.items()):
            for extra in sites[1:]:
                self.emit(
                    "SIM303",
                    extra,
                    f"rng stream {key!r} is shared across "
                    f"{len(sites)} component instances; spawn one child "
                    "stream per component (spawn_rngs)",
                )

    def _track_assign(self, stmt: ast.Assign) -> None:
        value = stmt.value
        kind: str | None = None
        if isinstance(value, ast.Call):
            tail = _call_tail(self.index, self.fn.module, value)
            if tail in _RAW_GENERATORS:
                kind = "raw"
            elif tail in _RNG_FACTORIES:
                kind = "lineage"
        elif isinstance(value, ast.Name):
            if value.id in self.raw:
                kind = "raw"
            elif value.id in self.lineage:
                kind = "lineage"
        if kind is None:
            return
        bucket = self.raw if kind == "raw" else self.lineage
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                bucket.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                # ``a, b = spawn_rngs(seed, 2)``: each element one stream.
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        bucket.add(elt.id)

    def _rng_key(self, arg: ast.expr) -> str | None:
        if isinstance(arg, ast.Name) and (
            arg.id in self.raw or arg.id in self.lineage
        ):
            return arg.id
        if (
            isinstance(arg, ast.Attribute)
            and isinstance(arg.value, ast.Name)
            and arg.value.id == "self"
            and "rng" in arg.attr.lower()
        ):
            return f"self.{arg.attr}"
        return None

    def _check_constructor(self, node: ast.Call) -> None:
        resolved = self.index.resolve_call(
            node, module=self.fn.module, enclosing=self.enclosing, env=self.env
        )
        if (
            resolved is None
            or resolved.name != "__init__"
            or resolved.cls not in COMPONENT_CLASSES
        ):
            return
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            if isinstance(arg, ast.Name) and arg.id in self.raw:
                self.emit(
                    "SIM303",
                    node,
                    f"generator {arg.id!r} does not descend from "
                    "repro.sim.rng.make_rng/spawn_rngs but reaches a "
                    "component constructor; derive it from the seed tree",
                )
            key = self._rng_key(arg)
            if key is not None:
                self.uses.setdefault(key, []).append(node)


def _check_rng_lineage(index: ProjectIndex, emitters: _Emitters) -> None:
    scope = SIM_PACKAGES + RNG_EXTRA_PACKAGES
    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        if not _scoped(fn.module, scope) or fn.module in RNG_EXEMPT_MODULES:
            continue
        if not fn.node.body:
            continue  # synthesised dataclass __init__
        emit = emitters.for_module(fn.module)
        if emit is None:
            continue
        _RngLineage(index, fn, emit).check()


# ---------------------------------------------------------------------------
# SIM304 — unordered float accumulation in reachable code
# ---------------------------------------------------------------------------

def _has_float_evidence(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return True
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return True
    return False


class _UnorderedAccumulation:
    """SIM304 over one dispatch-reachable function."""

    def __init__(
        self, fn: FunctionInfo, set_names: set[str], emit: Emitter
    ) -> None:
        self.fn = fn
        self.set_names = set_names
        self.emit = emit
        self.float_locals: set[str] = set()

    def _iter_is_unordered(self, iter_node: ast.expr) -> str | None:
        if isinstance(iter_node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(iter_node, ast.Call) and isinstance(
            iter_node.func, ast.Name
        ):
            if iter_node.func.id in ("set", "frozenset"):
                return "a set(...) construction"
            return None
        key: str | None = None
        if isinstance(iter_node, ast.Name):
            key = iter_node.id
        elif (
            isinstance(iter_node, ast.Attribute)
            and isinstance(iter_node.value, ast.Name)
            and iter_node.value.id == "self"
        ):
            key = f"self.{iter_node.attr}"
        if key is not None and key in self.set_names:
            return f"set-typed {key!r}"
        return None

    def check(self) -> None:
        for stmt in ast.walk(self.fn.node):
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, float)
            ):
                self.float_locals.add(stmt.targets[0].id)
        for stmt in ast.walk(self.fn.node):
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                desc = self._iter_is_unordered(stmt.iter)
                if desc is not None:
                    self._check_loop_body(stmt, desc)
            elif (
                isinstance(stmt, ast.Call)
                and isinstance(stmt.func, ast.Name)
                and stmt.func.id == "sum"
                and stmt.args
            ):
                arg = stmt.args[0]
                src = arg
                if isinstance(arg, ast.GeneratorExp) and arg.generators:
                    src = arg.generators[0].iter
                desc = self._iter_is_unordered(src)
                if desc is not None and (
                    _has_float_evidence(arg) or desc.startswith("set-typed")
                ):
                    self.emit(
                        "SIM304",
                        stmt,
                        f"sum() over {desc}: float addition does not commute "
                        "and set order is salted per process — sum over "
                        "sorted(...) instead",
                    )

    def _check_loop_body(self, loop: ast.For | ast.AsyncFor, desc: str) -> None:
        for stmt in ast.walk(loop):
            if not (
                isinstance(stmt, ast.AugAssign) and isinstance(stmt.op, ast.Add)
            ):
                continue
            floaty = _has_float_evidence(stmt.value)
            if (
                not floaty
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id in self.float_locals
            ):
                floaty = True
            if floaty:
                self.emit(
                    "SIM304",
                    stmt,
                    f"order-sensitive float accumulation over {desc} in a "
                    "dispatch-reachable callback; iterate sorted(...) so the "
                    "sum is replay-stable",
                )


def _check_unordered_accumulation(
    index: ProjectIndex, graph: CallGraph, emitters: _Emitters
) -> None:
    set_names_by_module: dict[str, set[str]] = {}
    for qualname in sorted(graph.reachable_from_dispatch()):
        fn = index.functions.get(qualname)
        if fn is None or not fn.node.body:
            continue
        mod = index.modules.get(fn.module)
        if mod is None:
            continue
        names = set_names_by_module.get(fn.module)
        if names is None:
            collector = _SetNames()
            collector.visit(mod.tree)
            names = collector.names
            set_names_by_module[fn.module] = names
        emit = emitters.for_module(fn.module)
        if emit is None:
            continue
        _UnorderedAccumulation(fn, names, emit).check()


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

def check_shards(
    index: ProjectIndex, graph: CallGraph, effects: EffectMap
) -> list[Violation]:
    """Run SIM301–SIM304 over the project; returns the findings."""
    violations: list[Violation] = []
    emitters = _Emitters(index, violations)
    _check_boundary_writes(index, graph, effects, emitters)
    _check_lookahead(index, graph, effects, emitters)
    _check_rng_lineage(index, emitters)
    _check_unordered_accumulation(index, graph, emitters)
    return violations
