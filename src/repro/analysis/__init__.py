"""Static and runtime analysis for the simulation core.

Two halves guard the repo's bit-identical-replay guarantee:

* :mod:`repro.analysis.simlint` — an AST determinism linter (``repro
  lint``, rules SIM001–SIM005) that rejects wall-clock access,
  out-of-band randomness, unordered set iteration, missing
  ``__slots__`` on manifest hot-path classes, and swallowed exceptions
  in the simulation packages;
* :mod:`repro.analysis.sanitizer` — a runtime invariant checker
  (``Simulator(sanitize=True)`` / ``REPRO_SANITIZE=1``) that verifies
  clock monotonicity, queue-depth non-negativity, NIC byte
  conservation, WRR token bounds, and FTL mapping consistency on every
  dispatched event.

See DESIGN.md §6 ("Determinism & sanitizer contract").
"""

from __future__ import annotations

from repro.analysis.manifest import SIM_PACKAGES, SLOTS_MANIFEST
from repro.analysis.sanitizer import (
    Sanitizer,
    SanitizerError,
    SanitizingSimulator,
    env_sanitize_enabled,
    ftl_mapping_violation,
)
from repro.analysis.simlint import (
    RULES,
    Violation,
    format_violations,
    lint_file,
    lint_paths,
)

__all__ = [
    "RULES",
    "SIM_PACKAGES",
    "SLOTS_MANIFEST",
    "Sanitizer",
    "SanitizerError",
    "SanitizingSimulator",
    "Violation",
    "env_sanitize_enabled",
    "format_violations",
    "ftl_mapping_violation",
    "lint_file",
    "lint_paths",
]
