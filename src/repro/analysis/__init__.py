"""Static and runtime analysis for the simulation core.

Three layers guard the repo's bit-identical-replay guarantee:

* :mod:`repro.analysis.simlint` — per-file AST determinism rules
  (SIM001–SIM005): wall-clock access, out-of-band randomness, unordered
  set iteration, missing ``__slots__`` on manifest hot-path classes,
  swallowed exceptions;
* the whole-program passes — :mod:`repro.analysis.callgraph` builds a
  project-wide symbol table + call graph (resolving the scheduler's
  ``schedule(callback, *args)`` indirection),
  :mod:`repro.analysis.units` checks units-of-measure dataflow
  (SIM101–SIM104), and :mod:`repro.analysis.purity` checks
  event-callback purity (SIM201–SIM203);
  :mod:`repro.analysis.run` drives all of it behind the
  :mod:`repro.analysis.baseline` suppression workflow (``repro lint``);
* :mod:`repro.analysis.sanitizer` — a runtime invariant checker
  (``Simulator(sanitize=True)`` / ``REPRO_SANITIZE=1``) that verifies
  clock monotonicity, queue-depth non-negativity, NIC byte
  conservation, WRR token bounds, and FTL mapping consistency on every
  dispatched event.

See DESIGN.md §6 ("Determinism & sanitizer contract") and §8
("Whole-program analysis").
"""

from __future__ import annotations

from repro.analysis.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    update_baseline,
    write_baseline,
)
from repro.analysis.callgraph import CallGraph, ProjectIndex
from repro.analysis.manifest import (
    COMPONENT_CLASSES,
    SIM_PACKAGES,
    SLOTS_MANIFEST,
    UNITS_EXEMPT_MODULES,
)
from repro.analysis.purity import PURITY_RULES, check_purity
from repro.analysis.run import ALL_RULES, LintReport, lint_project
from repro.analysis.sanitizer import (
    Sanitizer,
    SanitizerError,
    SanitizingSimulator,
    env_sanitize_enabled,
    ftl_mapping_violation,
)
from repro.analysis.simlint import (
    RULES,
    Violation,
    format_violations,
    lint_file,
    lint_paths,
)
from repro.analysis.units import UNIT_RULES, check_units

__all__ = [
    "ALL_RULES",
    "BaselineEntry",
    "COMPONENT_CLASSES",
    "CallGraph",
    "LintReport",
    "PURITY_RULES",
    "ProjectIndex",
    "RULES",
    "SIM_PACKAGES",
    "SLOTS_MANIFEST",
    "Sanitizer",
    "SanitizerError",
    "SanitizingSimulator",
    "UNITS_EXEMPT_MODULES",
    "UNIT_RULES",
    "Violation",
    "apply_baseline",
    "check_purity",
    "check_units",
    "env_sanitize_enabled",
    "format_violations",
    "ftl_mapping_violation",
    "lint_file",
    "lint_paths",
    "lint_project",
    "load_baseline",
    "update_baseline",
    "write_baseline",
]
