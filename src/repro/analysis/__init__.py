"""Static and runtime analysis for the simulation core.

Three layers guard the repo's bit-identical-replay guarantee:

* :mod:`repro.analysis.simlint` — per-file AST determinism rules
  (SIM001–SIM005): wall-clock access, out-of-band randomness, unordered
  set iteration, missing ``__slots__`` on manifest hot-path classes,
  swallowed exceptions;
* the whole-program passes — :mod:`repro.analysis.callgraph` builds a
  project-wide symbol table + call graph (resolving the scheduler's
  ``schedule(callback, *args)`` indirection),
  :mod:`repro.analysis.units` checks units-of-measure dataflow
  (SIM101–SIM104), :mod:`repro.analysis.purity` checks event-callback
  purity (SIM201–SIM203), and :mod:`repro.analysis.effects` +
  :mod:`repro.analysis.shards` compute interprocedural effect/escape
  summaries and the shard-safety rules (SIM301–SIM304,
  ``repro lint --shards``); :mod:`repro.analysis.snapshots` proves
  every world checkpointable on the same substrate (SIM401–SIM404,
  ``repro lint --snapshots``);
  :mod:`repro.analysis.run` drives all of it behind the
  :mod:`repro.analysis.baseline` suppression workflow (``repro lint``),
  with rule selection via :mod:`repro.analysis.registry`
  (``--select``/``--ignore``) and :mod:`repro.analysis.sarif` as the
  CI-neutral output format;
* :mod:`repro.analysis.sanitizer` — a runtime invariant checker
  (``Simulator(sanitize=True)`` / ``REPRO_SANITIZE=1``) that verifies
  clock monotonicity, queue-depth non-negativity, NIC byte
  conservation, WRR token bounds, and FTL mapping consistency on every
  dispatched event.

See DESIGN.md §6 ("Determinism & sanitizer contract"), §8
("Whole-program analysis"), and §10 ("Effect analysis & shard safety").
"""

from __future__ import annotations

from repro.analysis.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
    prune_stale,
    reconcile_stale,
    update_baseline,
    write_baseline,
)
from repro.analysis.callgraph import CallGraph, ProjectIndex
from repro.analysis.effects import (
    EffectMap,
    EffectSummary,
    compute_effects,
    load_or_compute_effects,
)
from repro.analysis.manifest import (
    CHECKPOINT_PACKAGES,
    COMPONENT_CLASSES,
    HEAP_EXTRA_CLASSES,
    REDUCER_SANCTIONED,
    SHARD_REACH,
    SIM_PACKAGES,
    SLOTS_MANIFEST,
    UNITS_EXEMPT_MODULES,
)
from repro.analysis.purity import PURITY_RULES, check_purity
from repro.analysis.registry import (
    RULE_GROUPS,
    RuleGroup,
    expand_selection,
    resolve_active_rules,
)
from repro.analysis.sarif import sarif_report, to_sarif, violations_from_sarif
from repro.analysis.shards import SHARD_RULES, check_shards
from repro.analysis.snapshots import (
    SNAPSHOT_RULES,
    check_snapshots,
    heap_class_census,
    load_or_compute_snapshots,
)
from repro.analysis.run import ALL_RULES, LintReport, lint_project
from repro.analysis.sanitizer import (
    Sanitizer,
    SanitizerError,
    SanitizingSimulator,
    env_sanitize_enabled,
    ftl_mapping_violation,
)
from repro.analysis.simlint import (
    RULES,
    Violation,
    format_violations,
    lint_file,
    lint_paths,
)
from repro.analysis.units import UNIT_RULES, check_units

__all__ = [
    "ALL_RULES",
    "BaselineEntry",
    "CHECKPOINT_PACKAGES",
    "COMPONENT_CLASSES",
    "CallGraph",
    "EffectMap",
    "EffectSummary",
    "HEAP_EXTRA_CLASSES",
    "LintReport",
    "PURITY_RULES",
    "ProjectIndex",
    "REDUCER_SANCTIONED",
    "RULES",
    "RULE_GROUPS",
    "RuleGroup",
    "SHARD_REACH",
    "SHARD_RULES",
    "SIM_PACKAGES",
    "SLOTS_MANIFEST",
    "SNAPSHOT_RULES",
    "Sanitizer",
    "SanitizerError",
    "SanitizingSimulator",
    "UNITS_EXEMPT_MODULES",
    "UNIT_RULES",
    "Violation",
    "apply_baseline",
    "check_purity",
    "check_shards",
    "check_snapshots",
    "check_units",
    "compute_effects",
    "env_sanitize_enabled",
    "expand_selection",
    "format_violations",
    "ftl_mapping_violation",
    "heap_class_census",
    "lint_file",
    "lint_paths",
    "lint_project",
    "load_baseline",
    "load_or_compute_effects",
    "load_or_compute_snapshots",
    "resolve_active_rules",
    "prune_stale",
    "reconcile_stale",
    "sarif_report",
    "to_sarif",
    "update_baseline",
    "violations_from_sarif",
    "write_baseline",
]
