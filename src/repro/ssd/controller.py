"""SSD controller: command fetch, FTL orchestration, completion posting.

The controller owns the device-side half of the NVMe queue protocol:

* it fetches commands from an attached :class:`SubmissionSource` (the
  NVMe driver) whenever device slots are free — at most ``queue_depth``
  commands in flight, with the *order* of fetch decided entirely by the
  driver (FIFO or SSQ WRR, which is SRC's control point);
* it splits commands into page transactions (data reads/programs,
  mapping reads on CMT misses, GC traffic) and tracks per-command
  outstanding counts;
* it posts completion entries to a bounded CQ; a full CQ holds the
  command's slot, propagating host-side backpressure into the device —
  the mechanism behind read-throughput waste under DCQCN-only control.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Callable, Protocol

from repro.sim.engine import Simulator
from repro.ssd.config import SSDConfig
from repro.ssd.flash import FlashBackend
from repro.ssd.ftl import FTL
from repro.ssd.transactions import PageTransaction, TxnKind
from repro.ssd.write_cache import WriteCache
from repro.workloads.request import IORequest

if TYPE_CHECKING:
    from repro.core.units import Nanoseconds, PageCount


class SubmissionSource(Protocol):
    """What the controller needs from an NVMe driver."""

    def fetch(self, inflight_reads: int, inflight_writes: int, queue_depth: int) -> IORequest | None:
        """Pop the next command to fetch, or None if nothing eligible."""
        ...

    def has_pending(self) -> bool: ...


@dataclass(slots=True)
class CompletionEntry:
    """One CQ entry."""

    request: IORequest
    posted_ns: Nanoseconds


class _GCJob:
    """One block's GC compaction: reads, relocations, the final erase.

    Replaces the former ``copy_done``/``after_read`` closures (and their
    shared ``state`` dict) with a slotted object so in-flight GC work
    survives checkpoint pickling.  ``finish_gc`` is looked up on the FTL
    *instance* at call time, preserving the sanitizer's mapping-check
    wrapper when one is installed.
    """

    __slots__ = ("ctrl", "chip_index", "block_id", "remaining")

    def __init__(
        self, ctrl: "SSDController", chip_index: int, block_id: int, remaining: int
    ) -> None:
        self.ctrl = ctrl
        self.chip_index = chip_index
        self.block_id = block_id
        self.remaining = remaining

    def after_read(self, lpn: int, _txn: PageTransaction) -> None:
        ctrl = self.ctrl
        if ctrl.ftl.gc_relocate(lpn, self.chip_index, self.block_id):
            program = PageTransaction(
                kind=TxnKind.GC_PROGRAM,
                chip_index=self.chip_index,
                page_bytes=ctrl.config.page_bytes,
                on_done=self.copy_done,
            )
            ctrl.backend.submit(program)
        else:
            self.copy_done()

    def copy_done(self, _txn: PageTransaction | None = None) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            erase = PageTransaction(
                kind=TxnKind.ERASE,
                chip_index=self.chip_index,
                page_bytes=0,
                on_done=self._erased,
            )
            self.ctrl.backend.submit(erase)

    def _erased(self, _txn: PageTransaction) -> None:
        self.ctrl.ftl.finish_gc(self.chip_index, self.block_id)


@dataclass(slots=True)
class _Inflight:
    request: IORequest
    pages_outstanding: PageCount
    cache_reserved: int = 0
    completed: bool = field(default=False)


class SSDController:
    """Device-side command engine (see module docstring)."""

    def __init__(
        self,
        sim: Simulator,
        config: SSDConfig,
        backend: FlashBackend,
        ftl: FTL,
        cache: WriteCache,
    ) -> None:
        self.sim = sim
        self.config = config
        self.backend = backend
        self.ftl = ftl
        self.cache = cache
        self.driver: SubmissionSource | None = None

        self.inflight_reads = 0
        self.inflight_writes = 0
        self.cq: deque[CompletionEntry] = deque()
        self._pending_cq: deque[_Inflight] = deque()
        self._stalled_writes: deque[_Inflight] = deque()
        self.cq_listener: Callable[[CompletionEntry], None] | None = None
        self.completion_log: list[tuple[int, IORequest]] = []
        self.commands_fetched = 0
        self.commands_completed = 0
        #: Write-back programs that failed after the host was acked.
        self.background_write_failures = 0

    # -- wiring -----------------------------------------------------------
    def attach_driver(self, driver: SubmissionSource) -> None:
        self.driver = driver

    @property
    def slots_used(self) -> int:
        return self.inflight_reads + self.inflight_writes

    # -- fetch loop -------------------------------------------------------
    def doorbell(self) -> None:
        """Driver notification that new commands were submitted."""
        self.kick()

    def kick(self) -> None:
        """Fetch commands while slots are free and the driver has work."""
        if self.driver is None:
            return
        while self.slots_used < self.config.queue_depth:
            req = self.driver.fetch(
                self.inflight_reads, self.inflight_writes, self.config.queue_depth
            )
            if req is None:
                break
            self._start_command(req)

    def _start_command(self, req: IORequest) -> None:
        req.fetch_ns = self.sim.now
        self.commands_fetched += 1
        if req.is_read:
            self.inflight_reads += 1
            self._start_read(req)
        else:
            self.inflight_writes += 1
            self._start_write(req)

    # -- reads ----------------------------------------------------------
    def _start_read(self, req: IORequest) -> None:
        lpns = list(self.ftl.lpn_range(req.lba, req.size_bytes))
        cmd = _Inflight(request=req, pages_outstanding=len(lpns))
        for lpn in lpns:
            if self.cache.read_hit(lpn):
                # Served from the write cache at DRAM speed; one page
                # transfer time stands in for the cache copy-out.
                self.sim.schedule(self.config.page_transfer_ns, self._page_done, cmd)
                continue
            chip = self.ftl.chip_for_read(lpn)
            hit = self.ftl.cmt.lookup(lpn)
            data_txn = PageTransaction(
                kind=TxnKind.READ,
                chip_index=chip,
                page_bytes=self.config.page_bytes,
                owner=cmd,
                on_done=partial(self._page_done, cmd),
            )
            if not hit and self.config.mapping_read_penalty:
                # The translation itself must be read from flash first.
                mapping_txn = PageTransaction(
                    kind=TxnKind.MAPPING_READ,
                    chip_index=chip,
                    page_bytes=self.config.page_bytes,
                    owner=cmd,
                    on_done=partial(self._mapping_done, data_txn, cmd),
                )
                self.backend.submit(mapping_txn)
            else:
                self.backend.submit(data_txn)

    # -- writes ----------------------------------------------------------
    def _start_write(self, req: IORequest) -> None:
        lpns = list(self.ftl.lpn_range(req.lba, req.size_bytes))
        stage_bytes = len(lpns) * self.config.page_bytes
        cmd = _Inflight(request=req, pages_outstanding=len(lpns), cache_reserved=stage_bytes)
        if not self.cache.can_reserve(stage_bytes):
            # Fetched but unadmittable: the command holds its slot until
            # flushes free staging space (realistic full-cache stall).
            self._stalled_writes.append(cmd)
            return
        self._admit_write(cmd)

    def _admit_write(self, cmd: _Inflight) -> None:
        self.cache.reserve(cmd.cache_reserved)
        req = cmd.request
        lpns = list(self.ftl.lpn_range(req.lba, req.size_bytes))
        write_back = self.config.write_cache_policy == "write_back"
        if write_back:
            # Completion at cache speed: data is staged (one page-transfer
            # per page, pipelined => dominated by the last page), flash
            # programs drain in the background.
            staging = self.config.page_transfer_ns * len(lpns)
            self.sim.schedule(staging, self._complete_command, cmd)
        for lpn in lpns:
            self.cache.note_write(lpn)
            chip = self.ftl.allocate_write(lpn)
            self.ftl.cmt.lookup(lpn)  # writes touch the mapping too
            txn = PageTransaction(
                kind=TxnKind.PROGRAM,
                chip_index=chip,
                page_bytes=self.config.page_bytes,
                owner=cmd,
                on_done=partial(self._write_page_done, cmd),
            )
            self.backend.submit(txn)
            self._maybe_gc(chip)

    def _write_page_done(self, cmd: _Inflight, txn: PageTransaction | None = None) -> None:
        self.cache.release(self.config.page_bytes)
        cmd.cache_reserved -= self.config.page_bytes
        self._retry_stalled_writes()
        if txn is not None and txn.failed:
            if cmd.completed:
                # write_back already acked the host at staging time; the
                # background program failed silently (counted, like a
                # real drive's deferred-error log).
                self.background_write_failures += 1
            else:
                cmd.request.error = "media"
        if self.config.write_cache_policy == "write_through":
            self._page_done(cmd)
        # write_back: command already completed at staging time; the
        # program only frees cache space.

    def _retry_stalled_writes(self) -> None:
        while self._stalled_writes and self.cache.can_reserve(
            self._stalled_writes[0].cache_reserved
        ):
            self._admit_write(self._stalled_writes.popleft())

    def _mapping_done(
        self, data_txn: PageTransaction, cmd: _Inflight, txn: PageTransaction
    ) -> None:
        """A mapping read finished; chain the data read unless it errored."""
        if txn.failed:
            cmd.request.error = "media"
            self._page_done(cmd)
        else:
            self.backend.submit(data_txn)

    # -- completion ------------------------------------------------------
    def _page_done(self, cmd: _Inflight, txn: PageTransaction | None = None) -> None:
        if txn is not None and txn.failed:
            # The command still waits for its other pages; it completes
            # once all of them resolve, carrying the error status.
            cmd.request.error = "media"
        cmd.pages_outstanding -= 1
        if cmd.pages_outstanding == 0 and not cmd.completed:
            self._complete_command(cmd)

    def _complete_command(self, cmd: _Inflight) -> None:
        if cmd.completed:
            return
        cmd.completed = True
        cmd.request.device_done_ns = self.sim.now
        if len(self.cq) < self.config.cq_capacity:
            self._post_completion(cmd)
        else:
            self._pending_cq.append(cmd)

    def _post_completion(self, cmd: _Inflight) -> None:
        req = cmd.request
        entry = CompletionEntry(request=req, posted_ns=self.sim.now)
        self.cq.append(entry)
        if req.is_read:
            self.inflight_reads -= 1
        else:
            self.inflight_writes -= 1
        self.commands_completed += 1
        self.completion_log.append((self.sim.now, req))
        if self.cq_listener is not None:
            self.cq_listener(entry)
        self.kick()

    def pop_completion(self) -> CompletionEntry | None:
        """Host consumes one CQ entry, unblocking any queued completion."""
        if not self.cq:
            return None
        entry = self.cq.popleft()
        if self._pending_cq:
            self._post_completion(self._pending_cq.popleft())
        return entry

    # -- garbage collection ------------------------------------------------
    def _maybe_gc(self, chip_index: int) -> None:
        if self.backend.is_chip_failed(chip_index):
            return  # no point compacting a dead die
        if not self.ftl.gc_needed(chip_index):
            return
        victim = self.ftl.begin_gc(chip_index)
        if victim is None:
            return
        block_id, valid_lpns = victim
        job = _GCJob(self, chip_index, block_id, remaining=len(valid_lpns))

        if not valid_lpns:
            job.remaining = 1
            job.copy_done()
            return

        for lpn in valid_lpns:
            self.backend.submit(
                PageTransaction(
                    kind=TxnKind.GC_READ,
                    chip_index=chip_index,
                    page_bytes=self.config.page_bytes,
                    on_done=partial(job.after_read, lpn),
                )
            )
