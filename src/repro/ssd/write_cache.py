"""SSD write cache / staging buffer.

Byte-accounted with two roles:

* **space accounting** — ``reserve`` / ``release`` gate write admission;
  when the cache is full the controller stalls write fetch, which is how
  a saturating write stream becomes flash-bound;
* **residency tracking** — recently written LPNs stay resident (LRU,
  byte-bounded), letting subsequent reads hit at cache speed instead of
  issuing flash transactions.
"""

from __future__ import annotations

from collections import OrderedDict


class WriteCache:
    """Byte-bounded staging buffer with LPN residency tracking."""

    def __init__(self, capacity_bytes: int, page_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        if page_bytes <= 0:
            raise ValueError(f"page size must be positive, got {page_bytes}")
        self.capacity = capacity_bytes
        self.page_bytes = page_bytes
        self.occupied = 0
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.read_hits = 0
        self.read_misses = 0

    # -- space accounting ---------------------------------------------------
    def can_reserve(self, nbytes: int) -> bool:
        return self.occupied + nbytes <= self.capacity

    def reserve(self, nbytes: int) -> None:
        """Claim staging space; caller must have checked :meth:`can_reserve`."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if not self.can_reserve(nbytes):
            raise RuntimeError(f"cache overflow: {self.occupied}+{nbytes} > {self.capacity}")
        self.occupied += nbytes

    def release(self, nbytes: int) -> None:
        """Return staging space after the data reaches flash."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes > self.occupied:
            raise RuntimeError(f"cache underflow: releasing {nbytes} of {self.occupied}")
        self.occupied -= nbytes

    # -- residency ----------------------------------------------------------
    def note_write(self, lpn: int) -> None:
        """Mark an LPN resident (most recently used)."""
        if lpn in self._resident:
            self._resident.move_to_end(lpn)
        else:
            self._resident[lpn] = None
            max_pages = max(1, self.capacity // self.page_bytes)
            while len(self._resident) > max_pages:
                self._resident.popitem(last=False)

    def read_hit(self, lpn: int) -> bool:
        """True when a read of ``lpn`` can be served from the cache."""
        if lpn in self._resident:
            self._resident.move_to_end(lpn)
            self.read_hits += 1
            return True
        self.read_misses += 1
        return False

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    @property
    def utilisation(self) -> float:
        return self.occupied / self.capacity
