"""Flash translation layer: page mapping, allocation, CMT, GC bookkeeping.

Pure state machine — it creates no events.  The controller asks it to
translate reads, allocate writes, and select GC victims, and submits the
resulting transactions to the backend itself.

Mapping is page-level: logical page number (LPN) → (chip, block, page).
Writes allocate out-of-place, striping consecutive allocations across
chips round-robin to expose backend parallelism; the old physical page
is invalidated for GC.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.ssd.config import SSDConfig


class CachedMappingTable:
    """LRU cache of translation pages, bounded by CMT capacity.

    Models the DRAM-resident slice of the page map the DFTL way: the
    map is stored on flash in *translation pages* of
    ``page_bytes / entry_bytes`` consecutive LPN entries, and the CMT
    caches whole translation pages (``cmt_bytes / page_bytes`` of them).
    A lookup miss means the translation page must be fetched from flash
    — the controller turns that into a
    :class:`~repro.ssd.transactions.TxnKind.MAPPING_READ`.
    """

    def __init__(self, cmt_bytes: int, page_bytes: int, entry_bytes: int) -> None:
        if cmt_bytes < 1 or page_bytes < 1 or entry_bytes < 1:
            raise ValueError("CMT sizing parameters must be positive")
        self.entries_per_translation_page = max(1, page_bytes // entry_bytes)
        self.capacity = max(1, cmt_bytes // page_bytes)
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._pages)

    def translation_page_of(self, lpn: int) -> int:
        return lpn // self.entries_per_translation_page

    def lookup(self, lpn: int) -> bool:
        """True on hit.  A miss inserts the translation page (fetch-on-miss)."""
        key = self.translation_page_of(lpn)
        if key in self._pages:
            self._pages.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._pages[key] = None
        if len(self._pages) > self.capacity:
            self._pages.popitem(last=False)
        return False

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _Block:
    """Physical block state for allocation and GC."""

    id: int
    written: int = 0  # pages programmed so far (0..pages_per_block)
    page_lpn: dict[int, int] = field(default_factory=dict)  # page offset -> lpn

    def valid_count(self) -> int:
        return len(self.page_lpn)


class _ChipState:
    """Per-chip allocator state."""

    def __init__(self, chip_index: int, blocks_per_chip: int) -> None:
        self.chip_index = chip_index
        self.free_blocks: deque[int] = deque(range(1, blocks_per_chip))
        self.blocks: dict[int, _Block] = {0: _Block(0)}
        self.active_block: int = 0
        self.gc_active = False

    def free_block_count(self) -> int:
        return len(self.free_blocks)


class FTL:
    """Page-level FTL with round-robin chip striping and greedy GC."""

    def __init__(self, config: SSDConfig) -> None:
        self.config = config
        self.cmt = CachedMappingTable(
            config.cmt_bytes, config.page_bytes, config.cmt_entry_bytes
        )
        self._map: dict[int, tuple[int, int, int]] = {}  # lpn -> (chip, block, page)
        self._chips = [_ChipState(i, config.blocks_per_chip) for i in range(config.n_chips)]
        self._next_chip = 0
        self.gc_invocations = 0
        self.gc_pages_moved = 0

    # -- translation -------------------------------------------------------
    def lpn_range(self, lba: int, size_bytes: int) -> range:
        """Logical page numbers spanned by a (sector LBA, size) extent."""
        start_byte = lba * 512
        first = start_byte // self.config.page_bytes
        last = (start_byte + size_bytes - 1) // self.config.page_bytes
        return range(first, last + 1)

    def chip_for_read(self, lpn: int) -> int:
        """Chip holding ``lpn``; unmapped pages get a deterministic home.

        Reads of never-written data are common in synthetic workloads;
        MQSim's preconditioning assigns them a location, which hashing
        the LPN reproduces without preconditioning passes.
        """
        entry = self._map.get(lpn)
        if entry is not None:
            return entry[0]
        return hash(lpn) % self.config.n_chips

    # -- allocation -----------------------------------------------------
    def allocate_write(self, lpn: int) -> int:
        """Allocate a physical page for ``lpn``; returns its chip index.

        Invalidates any previous mapping of the LPN.
        """
        old = self._map.get(lpn)
        if old is not None:
            chip, block_id, page = old
            block = self._chips[chip].blocks.get(block_id)
            if block is not None:
                block.page_lpn.pop(page, None)
        chip_index = self._next_chip
        self._next_chip = (self._next_chip + 1) % self.config.n_chips
        self._place(lpn, chip_index)
        return chip_index

    def gc_relocate(self, lpn: int, chip_index: int, victim_block: int) -> bool:
        """Re-place a GC-copied page, unless a newer write superseded it.

        Returns False (no-op) when the LPN no longer maps into the victim
        block — a host write relocated it while the GC copy was in
        flight, so the copied data is stale and must be dropped.
        """
        entry = self._map.get(lpn)
        if entry is None or entry[0] != chip_index or entry[1] != victim_block:
            return False
        _, block_id, page = entry
        block = self._chips[chip_index].blocks.get(block_id)
        if block is not None:
            block.page_lpn.pop(page, None)
        self._place(lpn, chip_index)
        self.note_gc_copy()
        return True

    def _place(self, lpn: int, chip_index: int) -> None:
        chip = self._chips[chip_index]
        block = chip.blocks[chip.active_block]
        if block.written >= self.config.pages_per_block:
            if not chip.free_blocks:
                raise RuntimeError(
                    f"chip {chip_index} out of free blocks — GC cannot keep up "
                    "(workload overcommits physical capacity)"
                )
            new_id = chip.free_blocks.popleft()
            chip.blocks[new_id] = _Block(new_id)
            chip.active_block = new_id
            block = chip.blocks[new_id]
        page = block.written
        block.written += 1
        block.page_lpn[page] = lpn
        self._map[lpn] = (chip_index, block.id, page)

    # -- garbage collection ------------------------------------------------
    def gc_needed(self, chip_index: int) -> bool:
        chip = self._chips[chip_index]
        return (
            not chip.gc_active
            and chip.free_block_count() < self.config.gc_threshold_free_blocks
        )

    def begin_gc(self, chip_index: int) -> tuple[int, list[int]] | None:
        """Select a victim block; returns (block_id, valid LPNs) or None.

        The victim is the fully-written block with the fewest valid pages
        (greedy).  Marks the chip as GC-active; :meth:`finish_gc` clears
        it.
        """
        chip = self._chips[chip_index]
        candidates = [
            b
            for b in chip.blocks.values()
            if b.id != chip.active_block and b.written >= self.config.pages_per_block
        ]
        if not candidates:
            return None
        victim = min(candidates, key=_Block.valid_count)
        chip.gc_active = True
        self.gc_invocations += 1
        valid = list(victim.page_lpn.values())
        return victim.id, valid

    def finish_gc(self, chip_index: int, block_id: int) -> None:
        """Erase the victim: return it to the free pool."""
        chip = self._chips[chip_index]
        block = chip.blocks.pop(block_id, None)
        if block is None:
            raise ValueError(f"block {block_id} not live on chip {chip_index}")
        # Any pages still mapped to this block were moved by GC already;
        # a non-empty map here is a bookkeeping bug.
        if block.page_lpn:
            raise RuntimeError("erasing a block with valid pages")
        chip.free_blocks.append(block_id)
        chip.gc_active = False

    def note_gc_copy(self) -> None:
        self.gc_pages_moved += 1

    def free_blocks(self, chip_index: int) -> int:
        return self._chips[chip_index].free_block_count()

    @property
    def mapped_pages(self) -> int:
        return len(self._map)
