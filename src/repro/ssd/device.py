"""Top-level SSD device facade.

Wires config → backend + FTL + cache + controller on a shared simulator
and exposes the handful of operations the rest of the stack needs:
attach a driver, ring the doorbell, consume completions, read stats.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.units import GBPS
from repro.ssd.config import SSDConfig
from repro.ssd.controller import CompletionEntry, SSDController, SubmissionSource
from repro.ssd.flash import FlashBackend
from repro.ssd.ftl import FTL
from repro.ssd.write_cache import WriteCache


class SSD:
    """One simulated NVMe SSD."""

    def __init__(self, sim: Simulator, config: SSDConfig) -> None:
        self.sim = sim
        self.config = config
        self.backend = FlashBackend(sim, config)
        self.ftl = FTL(config)
        self.cache = WriteCache(config.write_cache_bytes, config.page_bytes)
        self.controller = SSDController(sim, config, self.backend, self.ftl, self.cache)
        if sim.sanitizer is not None:
            sim.sanitizer.track_ftl(self.ftl)

    # -- host-facing surface ------------------------------------------------
    def attach_driver(self, driver: SubmissionSource) -> None:
        self.controller.attach_driver(driver)

    def doorbell(self) -> None:
        self.controller.doorbell()

    def pop_completion(self) -> CompletionEntry | None:
        return self.controller.pop_completion()

    def set_cq_listener(self, listener: Callable[[CompletionEntry], None]) -> None:
        self.controller.cq_listener = listener

    def auto_drain(self, _entry: CompletionEntry) -> None:
        """CQ listener for hosts without fabric backpressure: consume
        each completion the instant it posts (picklable bound method —
        experiments install it instead of an ad-hoc lambda)."""
        self.pop_completion()

    # -- statistics ------------------------------------------------------------
    def completed_bytes(
        self, *, read: bool, start_ns: int = 0, end_ns: int | None = None
    ) -> int:
        """Bytes of completed commands of one direction in a time window.

        The default window is ``[0, now]`` *inclusive of now* so that a
        drained run counts its final completions.
        """
        end = end_ns if end_ns is not None else self.sim.now + 1
        total = 0
        for t, req in self.controller.completion_log:
            if start_ns <= t < end and req.is_read == read:
                total += req.size_bytes
        return total

    def throughput_gbps(
        self, *, read: bool, start_ns: int = 0, end_ns: int | None = None
    ) -> float:
        """Average completion throughput of one direction over a window."""
        end = end_ns if end_ns is not None else self.sim.now
        if end <= start_ns:
            return 0.0
        nbytes = self.completed_bytes(read=read, start_ns=start_ns, end_ns=end + 1)
        return nbytes / (end - start_ns) / GBPS

    def throughput_series(
        self, bin_ns: int, *, read: bool, end_ns: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(bin start times, Gbps per bin) completion throughput series."""
        if bin_ns <= 0:
            raise ValueError(f"bin width must be positive, got {bin_ns}")
        end = end_ns if end_ns is not None else self.sim.now + 1
        n_bins = max(1, -(-end // bin_ns))
        bins = np.zeros(n_bins)
        for t, req in self.controller.completion_log:
            if t < end and req.is_read == read:
                bins[t // bin_ns] += req.size_bytes
        times = np.arange(n_bins) * bin_ns
        return times, bins / bin_ns / GBPS
