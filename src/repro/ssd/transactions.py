"""Page transactions — the unit of work inside the SSD backend.

The controller splits every fetched NVMe command into page-sized
transactions (MQSim's "transaction" layer); the FTL may add mapping
reads, and the GC adds copy/erase transactions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.serial import SerialCounter


class TxnKind(enum.Enum):
    """What a page transaction does at the flash backend."""

    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"
    MAPPING_READ = "mapping_read"
    GC_READ = "gc_read"
    GC_PROGRAM = "gc_program"


_txn_ids = SerialCounter("ssd.txn")


@dataclass(slots=True)
class PageTransaction:
    """One page-granularity flash operation.

    Attributes
    ----------
    kind:
        Operation type; determines chip occupancy time and channel usage.
    chip_index:
        Flat chip index ``channel * chips_per_channel + chip``.
    page_bytes:
        Payload moved over the channel (0 for erase).
    owner:
        Opaque back-reference (the in-flight command, or the GC job).
    on_done:
        Callback invoked when the backend finishes the transaction.
    """

    kind: TxnKind
    chip_index: int
    page_bytes: int
    owner: Any = None
    on_done: Callable[["PageTransaction"], None] | None = None
    txn_id: int = field(default_factory=lambda: next(_txn_ids))
    issued_ns: int = -1
    done_ns: int = -1
    #: Set by the backend when the target die has failed: the
    #: transaction completed with an error status instead of data.
    failed: bool = False

    def __post_init__(self) -> None:
        if self.chip_index < 0:
            raise ValueError(f"chip index must be non-negative, got {self.chip_index}")
        if self.page_bytes < 0:
            raise ValueError(f"page bytes must be non-negative, got {self.page_bytes}")

    @property
    def uses_channel(self) -> bool:
        """Erases occupy only the chip; everything else also moves data."""
        return self.kind is not TxnKind.ERASE

    @property
    def is_read_like(self) -> bool:
        """Chip-op-first transactions (data flows chip → channel)."""
        return self.kind in (TxnKind.READ, TxnKind.MAPPING_READ, TxnKind.GC_READ)
