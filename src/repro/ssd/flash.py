"""Flash backend: channels, chips, and two-stage transaction service.

Service model (per MQSim):

* **read-like** transactions first occupy the chip for the sensing
  latency, then the channel for one page-transfer time;
* **program-like** transactions first occupy the channel (data in), then
  the chip for the program latency;
* **erase** occupies only the chip.

Chips and channels are independent FIFO servers; this captures both
chip-level parallelism (many chips busy at once) and channel contention
(transfers on one channel serialise).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.sim.engine import Simulator
from repro.ssd.config import SSDConfig
from repro.ssd.transactions import PageTransaction, TxnKind

if TYPE_CHECKING:
    from repro.core.units import Nanoseconds


@dataclass
class _Server:
    """A FIFO resource (one channel)."""

    busy: bool = False
    queue: deque = field(default_factory=deque)
    busy_ns_total: Nanoseconds = 0


@dataclass
class _Chip:
    """A chip with separate read/write service queues.

    MQSim's transaction scheduling unit keeps per-chip queues per
    transaction type; with the equal priority the paper assumes
    ("SSD firmware grants an equal priority to read and write commands"),
    service alternates between the two queues whenever both are
    backlogged, so a burst of slow programs cannot starve reads.
    """

    busy: bool = False
    read_queue: deque = field(default_factory=deque)
    write_queue: deque = field(default_factory=deque)
    last_was_read: bool = False
    busy_ns_total: Nanoseconds = 0

    def pending(self) -> int:
        return len(self.read_queue) + len(self.write_queue)

    def next_item(self):
        """Pop the next transaction, alternating classes when both wait."""
        if self.read_queue and self.write_queue:
            use_read = not self.last_was_read
        elif self.read_queue:
            use_read = True
        elif self.write_queue:
            use_read = False
        else:
            return None
        self.last_was_read = use_read
        return (self.read_queue if use_read else self.write_queue).popleft()


class FlashBackend:
    """Event-driven channels × chips flash array."""

    def __init__(self, sim: Simulator, config: SSDConfig) -> None:
        self.sim = sim
        self.config = config
        self._chips = [_Chip() for _ in range(config.n_chips)]
        self._channels = [_Server() for _ in range(config.n_channels)]
        self.completed: int = 0
        # -- fault-injection state (all empty by default; the hot path
        # pays one truthiness check per stage when nothing is injected).
        #: Dead dies: submissions fail fast with an error status.
        self._failed_chips: set[int] = set()
        #: chip index -> latency multiplier (slow/worn die).
        self._chip_latency_mult: dict[int, float] = {}
        #: channel index -> latency multiplier (brownout).
        self._channel_latency_mult: dict[int, float] = {}
        #: Transactions failed fast against dead dies.
        self.failed_fast: int = 0

    # -- topology helpers --------------------------------------------------
    def channel_of(self, chip_index: int) -> int:
        if not 0 <= chip_index < self.config.n_chips:
            raise ValueError(f"chip index {chip_index} out of range")
        return chip_index // self.config.chips_per_channel

    # -- fault injection ---------------------------------------------------
    def is_chip_failed(self, chip_index: int) -> bool:
        return chip_index in self._failed_chips

    def fail_chip(self, chip_index: int) -> None:
        """Kill a die: future submissions to it fail fast with an error.

        Transactions already queued on the chip finish normally — they
        were in flight when the die died; only the submit-time check is
        affected, which keeps the failure point deterministic.
        """
        if not 0 <= chip_index < self.config.n_chips:
            raise ValueError(f"chip index {chip_index} out of range")
        self._failed_chips.add(chip_index)

    def set_chip_slowdown(self, chip_index: int, multiplier: float) -> None:
        """Scale a die's chip-stage latency (``1.0`` clears the fault)."""
        if multiplier <= 0:
            raise ValueError(f"multiplier must be positive, got {multiplier}")
        if multiplier == 1.0:
            self._chip_latency_mult.pop(chip_index, None)
        else:
            self._chip_latency_mult[chip_index] = multiplier

    def set_channel_slowdown(self, ch_index: int, multiplier: float) -> None:
        """Scale a channel's transfer latency (brownout; ``1.0`` clears)."""
        if multiplier <= 0:
            raise ValueError(f"multiplier must be positive, got {multiplier}")
        if multiplier == 1.0:
            self._channel_latency_mult.pop(ch_index, None)
        else:
            self._channel_latency_mult[ch_index] = multiplier

    # -- latencies ----------------------------------------------------------
    def _chip_latency(self, txn: PageTransaction) -> Nanoseconds:
        if txn.kind in (TxnKind.READ, TxnKind.MAPPING_READ, TxnKind.GC_READ):
            latency = self.config.read_latency_ns
        elif txn.kind in (TxnKind.PROGRAM, TxnKind.GC_PROGRAM):
            latency = self.config.write_latency_ns
        elif txn.kind is TxnKind.ERASE:
            latency = self.config.erase_latency_ns
        else:
            raise ValueError(f"unknown txn kind {txn.kind}")
        if self._chip_latency_mult:
            mult = self._chip_latency_mult.get(txn.chip_index)
            if mult is not None:
                latency = max(1, int(latency * mult))
        return latency

    def _channel_latency(self, txn: PageTransaction) -> Nanoseconds:
        if not txn.uses_channel or txn.page_bytes == 0:
            return 0
        # Partial last pages still occupy a full page slot on the bus
        # (MQSim transfers whole pages).
        latency = self.config.page_transfer_ns
        if self._channel_latency_mult:
            mult = self._channel_latency_mult.get(self.channel_of(txn.chip_index))
            if mult is not None:
                latency = max(1, int(latency * mult))
        return latency

    # -- dispatch -------------------------------------------------------------
    def submit(self, txn: PageTransaction) -> None:
        """Enter a transaction into the backend pipeline."""
        txn.issued_ns = self.sim.now
        if self._failed_chips and txn.chip_index in self._failed_chips:
            # Dead die: the command engine learns after one status-poll
            # round trip (modelled as a read-latency wait) that the
            # operation errored out; no chip or channel time is consumed.
            txn.failed = True
            self.failed_fast += 1
            self.sim.schedule(self.config.read_latency_ns, self._finish, txn)
            return
        if txn.is_read_like:
            self._enqueue_chip(txn, next_stage=self._after_read_chip)
        elif txn.kind in (TxnKind.PROGRAM, TxnKind.GC_PROGRAM):
            self._enqueue_channel(txn, next_stage=self._after_write_channel)
        else:  # ERASE
            self._enqueue_chip(txn, next_stage=self._finish)

    # -- chip stage -------------------------------------------------------
    def _enqueue_chip(self, txn: PageTransaction, next_stage) -> None:
        chip = self._chips[txn.chip_index]
        queue = chip.read_queue if txn.is_read_like else chip.write_queue
        queue.append((txn, next_stage))
        if not chip.busy:
            self._start_chip(txn.chip_index)

    def _start_chip(self, chip_index: int) -> None:
        chip = self._chips[chip_index]
        if chip.busy:
            return
        item = chip.next_item()
        if item is None:
            return
        txn, next_stage = item
        chip.busy = True
        latency = self._chip_latency(txn)
        chip.busy_ns_total += latency
        self.sim.schedule(latency, self._chip_done, chip_index, txn, next_stage)

    def _chip_done(self, chip_index: int, txn: PageTransaction, next_stage) -> None:
        self._chips[chip_index].busy = False
        next_stage(txn)
        self._start_chip(chip_index)

    # -- channel stage -------------------------------------------------------
    def _enqueue_channel(self, txn: PageTransaction, next_stage) -> None:
        latency = self._channel_latency(txn)
        if latency == 0:
            next_stage(txn)
            return
        ch_index = self.channel_of(txn.chip_index)
        channel = self._channels[ch_index]
        channel.queue.append((txn, next_stage))
        if not channel.busy:
            self._start_channel(ch_index)

    def _start_channel(self, ch_index: int) -> None:
        channel = self._channels[ch_index]
        if channel.busy or not channel.queue:
            return
        txn, next_stage = channel.queue.popleft()
        channel.busy = True
        latency = self._channel_latency(txn)
        channel.busy_ns_total += latency
        self.sim.schedule(latency, self._channel_done, ch_index, txn, next_stage)

    def _channel_done(self, ch_index: int, txn: PageTransaction, next_stage) -> None:
        self._channels[ch_index].busy = False
        next_stage(txn)
        self._start_channel(ch_index)

    # -- stage transitions ---------------------------------------------------
    def _after_read_chip(self, txn: PageTransaction) -> None:
        self._enqueue_channel(txn, next_stage=self._finish)

    def _after_write_channel(self, txn: PageTransaction) -> None:
        self._enqueue_chip(txn, next_stage=self._finish)

    def _finish(self, txn: PageTransaction) -> None:
        txn.done_ns = self.sim.now
        self.completed += 1
        if txn.on_done is not None:
            txn.on_done(txn)

    # -- introspection ----------------------------------------------------
    def chip_utilisation(self, horizon_ns: Nanoseconds) -> list[float]:
        """Fraction of ``horizon_ns`` each chip spent busy."""
        if horizon_ns <= 0:
            raise ValueError("horizon must be positive")
        return [min(1.0, c.busy_ns_total / horizon_ns) for c in self._chips]

    def pending(self) -> int:
        """Transactions queued or in service in the backend."""
        chip_q = sum(c.pending() for c in self._chips)
        chan_q = sum(len(c.queue) for c in self._channels)
        busy = sum(c.busy for c in self._chips) + sum(c.busy for c in self._channels)
        return chip_q + chan_q + busy
