"""SSD configuration and the Table II presets."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.units import KIB, MIB, US


@dataclass(frozen=True)
class SSDConfig:
    """Parameters of one simulated SSD.

    The first block mirrors MQSim's knobs as listed in Table II; the
    geometry/latency block fills in the internals Table II leaves at
    MQSim defaults.

    Attributes
    ----------
    queue_depth:
        Maximum commands in flight on the device (total across SQs).
    write_cache_bytes / cmt_bytes / page_bytes:
        Write-cache capacity, cached-mapping-table capacity, flash page
        size.
    read_latency_ns / write_latency_ns:
        Flash page read / program times.
    n_channels / chips_per_channel:
        Backend geometry; page transactions stripe over all chips.
    channel_bw_bytes_per_ns:
        Per-channel transfer bandwidth (default 0.8 GB/s ≈ ONFI-4 lane).
    blocks_per_chip / pages_per_block:
        Physical layout used by the FTL allocator and GC.
    erase_latency_ns:
        Block erase time.
    cmt_entry_bytes:
        Bytes of CMT capacity consumed per cached translation.
    mapping_read_penalty:
        Whether a CMT miss issues an extra mapping-page read.
    write_cache_policy:
        ``"write_through"`` (completion on flash program; paper-faithful
        for sustained load) or ``"write_back"`` (completion on cache
        insert, background flush).
    gc_threshold_free_blocks:
        Per-chip free-block low watermark that triggers GC.
    cq_depth:
        Completion-queue capacity; a full CQ back-pressures the device
        (completions wait, holding their command slots).  0 means
        "derive": twice the queue depth, per common NVMe practice.
    """

    name: str
    queue_depth: int
    write_cache_bytes: int
    cmt_bytes: int
    page_bytes: int
    read_latency_ns: int
    write_latency_ns: int
    # Backend geometry sized so Table II latencies yield the Gbps-scale
    # device throughputs the paper reports (SSD-A ≈ 5 Gbps read under a
    # balanced saturating load, Fig. 7-level aggregates), while the
    # lightest Fig. 5 workloads stay unsaturated: 8 channels × 2 chips.
    n_channels: int = 8
    chips_per_channel: int = 2
    channel_bw_bytes_per_ns: float = 0.8
    blocks_per_chip: int = 64
    pages_per_block: int = 256
    erase_latency_ns: int = 3_000_000
    cmt_entry_bytes: int = 8
    mapping_read_penalty: bool = True
    write_cache_policy: str = "write_through"
    gc_threshold_free_blocks: int = 2
    cq_depth: int = 0

    def __post_init__(self) -> None:
        positive = (
            "queue_depth",
            "write_cache_bytes",
            "cmt_bytes",
            "page_bytes",
            "read_latency_ns",
            "write_latency_ns",
            "n_channels",
            "chips_per_channel",
            "blocks_per_chip",
            "pages_per_block",
            "erase_latency_ns",
            "cmt_entry_bytes",
        )
        for field_name in positive:
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.cq_depth < 0:
            raise ValueError("cq_depth must be non-negative (0 = derive)")
        if self.channel_bw_bytes_per_ns <= 0:
            raise ValueError("channel bandwidth must be positive")
        if self.write_cache_policy not in ("write_through", "write_back"):
            raise ValueError(f"unknown cache policy {self.write_cache_policy!r}")
        if self.gc_threshold_free_blocks < 1:
            raise ValueError("gc threshold must be >= 1")
        if self.gc_threshold_free_blocks >= self.blocks_per_chip:
            raise ValueError("gc threshold must leave usable blocks")

    # -- derived quantities ---------------------------------------------
    @property
    def cq_capacity(self) -> int:
        """Effective CQ depth (``cq_depth`` or 2 × QD when derived)."""
        return self.cq_depth if self.cq_depth else 2 * self.queue_depth

    @property
    def n_chips(self) -> int:
        return self.n_channels * self.chips_per_channel

    @property
    def page_transfer_ns(self) -> int:
        """Time to move one page over a channel."""
        return max(1, int(self.page_bytes / self.channel_bw_bytes_per_ns + 0.5))

    @property
    def cmt_entries(self) -> int:
        """Number of translations the CMT can hold."""
        return max(1, self.cmt_bytes // self.cmt_entry_bytes)

    @property
    def capacity_pages(self) -> int:
        return self.n_chips * self.blocks_per_chip * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_pages * self.page_bytes

    def pages_for(self, size_bytes: int) -> int:
        """Number of page transactions a request of this size spans."""
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        return -(-size_bytes // self.page_bytes)

    def with_overrides(self, **kwargs) -> "SSDConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Table II, column SSD-A: commodity TLC-class latencies, shallow queue.
SSD_A = SSDConfig(
    name="SSD-A",
    queue_depth=128,
    write_cache_bytes=256 * MIB,
    cmt_bytes=2 * MIB,
    page_bytes=16 * KIB,
    read_latency_ns=75 * US,
    write_latency_ns=300 * US,
)

#: Table II, column SSD-B: ultra-low read latency (Z-NAND-class), deep queue.
SSD_B = SSDConfig(
    name="SSD-B",
    queue_depth=512,
    write_cache_bytes=256 * MIB,
    cmt_bytes=2 * MIB,
    page_bytes=16 * KIB,
    read_latency_ns=2 * US,
    write_latency_ns=100 * US,
)

#: Table II, column SSD-C: small pages, large caches, mid latencies.
SSD_C = SSDConfig(
    name="SSD-C",
    queue_depth=512,
    write_cache_bytes=512 * MIB,
    cmt_bytes=8 * MIB,
    page_bytes=8 * KIB,
    read_latency_ns=30 * US,
    write_latency_ns=200 * US,
)
