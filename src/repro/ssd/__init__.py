"""Transaction-level multi-queue SSD simulator (MQSim substitute).

The device model follows MQSim's decomposition (FAST'18):

* **host interface** — commands are fetched from the NVMe driver's
  submission queues into at most ``queue_depth`` device slots; fetch
  *order* is delegated to the driver (FIFO for the default driver, token
  WRR for the SSQ driver of §III-A), which is exactly the hook SRC uses;
* **FTL** — page-level mapping with a cached mapping table (CMT); a CMT
  miss costs an extra mapping-page read on the data page's chip;
* **write cache** — staging buffer; ``write_through`` (default, flash
  program bounds write completion as in the paper's Fig 5 behaviour) or
  ``write_back`` (completion on cache insert, background flush);
* **flash backend** — channels × chips; chip ops (read/program/erase)
  serialise per chip, page transfers serialise per channel;
* **GC** — greedy least-valid-block victim per chip once free blocks
  fall below a threshold.

All activity is event-driven on a shared :class:`repro.sim.Simulator`.
"""

from repro.ssd.config import SSD_A, SSD_B, SSD_C, SSDConfig
from repro.ssd.transactions import PageTransaction, TxnKind
from repro.ssd.flash import FlashBackend
from repro.ssd.ftl import FTL, CachedMappingTable
from repro.ssd.write_cache import WriteCache
from repro.ssd.controller import SSDController
from repro.ssd.device import SSD, CompletionEntry

__all__ = [
    "SSDConfig",
    "SSD_A",
    "SSD_B",
    "SSD_C",
    "PageTransaction",
    "TxnKind",
    "FlashBackend",
    "FTL",
    "CachedMappingTable",
    "WriteCache",
    "SSDController",
    "SSD",
    "CompletionEntry",
]
