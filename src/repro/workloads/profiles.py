"""Statistical profiles of real storage traces (substitution for SNIA data).

The paper synthesises workloads from statistics extracted from SNIA
IOTTA repository traces (Fujitsu VDI, Tencent CBS).  The raw traces are
not redistributable, so this module carries *summary-statistic profiles*
— the same quantities the paper's pipeline extracts (mean, SCV, skewness
and lag-1 autocorrelation of inter-arrival time and request size, per
direction) — and regenerates synthetic traces by MMPP(2) fitting, exactly
as the paper does with the KPC-Toolbox.

``FUJITSU_VDI`` follows the workload description in §IV-D: read-intensive
(reads ≈ 2× writes), 44 KB mean read size, 23 KB mean write size, ~10 µs
mean inter-arrival, bursty arrivals.  ``TENCENT_CBS`` models a cloud
block-store: write-heavy, smaller requests, higher size variability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import spawn_rngs
from repro.workloads.mmpp import fit_mmpp2, generate_mmpp_trace
from repro.workloads.request import OpType
from repro.workloads.traces import Trace, merge_traces


@dataclass(frozen=True)
class DirectionProfile:
    """Summary statistics of one I/O direction in a real trace."""

    mean_interarrival_ns: float
    interarrival_scv: float
    interarrival_autocorr: float
    mean_size_bytes: float
    size_scv: float

    def __post_init__(self) -> None:
        if self.mean_interarrival_ns <= 0 or self.mean_size_bytes <= 0:
            raise ValueError("means must be positive")
        if self.interarrival_scv < 0 or self.size_scv < 0:
            raise ValueError("SCVs must be non-negative")


@dataclass(frozen=True)
class TraceProfile:
    """Per-direction profile of a real repository trace."""

    name: str
    read: DirectionProfile
    write: DirectionProfile


#: Fujitsu VDI block trace (SNIA IOTTA), per §IV-D: read-intensive,
#: 44 KB / 23 KB mean request sizes, ~10 µs inter-arrivals, bursty.
FUJITSU_VDI = TraceProfile(
    name="fujitsu-vdi",
    read=DirectionProfile(
        mean_interarrival_ns=10_000,
        interarrival_scv=4.0,
        interarrival_autocorr=0.25,
        mean_size_bytes=44 * 1024,
        size_scv=2.5,
    ),
    write=DirectionProfile(
        mean_interarrival_ns=20_000,
        interarrival_scv=3.0,
        interarrival_autocorr=0.20,
        mean_size_bytes=23 * 1024,
        size_scv=2.0,
    ),
)

#: Tencent CBS cloud block storage (SNIA IOTTA): write-heavy, smaller
#: requests, high size variability.
TENCENT_CBS = TraceProfile(
    name="tencent-cbs",
    read=DirectionProfile(
        mean_interarrival_ns=25_000,
        interarrival_scv=6.0,
        interarrival_autocorr=0.30,
        mean_size_bytes=16 * 1024,
        size_scv=5.0,
    ),
    write=DirectionProfile(
        mean_interarrival_ns=12_000,
        interarrival_scv=5.0,
        interarrival_autocorr=0.28,
        mean_size_bytes=12 * 1024,
        size_scv=4.0,
    ),
)


def synthesize_from_profile(
    profile: TraceProfile,
    *,
    n_reads: int,
    n_writes: int,
    seed: int | None = None,
    start_ns: int = 0,
) -> Trace:
    """Generate a synthetic trace reproducing ``profile``'s statistics.

    Each direction gets its own fitted MMPP(2) arrival process and
    lognormal size distribution, then the two streams are merged in
    arrival order — the same regeneration pipeline the paper applies to
    the SNIA traces.
    """
    if n_reads < 0 or n_writes < 0:
        raise ValueError("request counts must be non-negative")
    rng_read, rng_write = spawn_rngs(seed, 2)
    parts: list[Trace] = []
    for count, direction, op, rng in (
        (n_reads, profile.read, OpType.READ, rng_read),
        (n_writes, profile.write, OpType.WRITE, rng_write),
    ):
        if count == 0:
            continue
        process = fit_mmpp2(
            direction.mean_interarrival_ns,
            direction.interarrival_scv,
            direction.interarrival_autocorr,
        )
        parts.append(
            generate_mmpp_trace(
                process,
                n_requests=count,
                op=op,
                mean_size_bytes=direction.mean_size_bytes,
                size_scv=direction.size_scv,
                seed=int(rng.integers(0, 2**31)),
                start_ns=start_ns,
            )
        )
    return merge_traces(parts) if parts else Trace([])
