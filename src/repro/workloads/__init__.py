"""Workload generation, trace statistics, and feature extraction.

Two families of traces mirror §IV-A of the paper:

* **micro traces** (:mod:`repro.workloads.micro`) — inter-arrival times
  and request sizes drawn from exponential distributions;
* **synthetic traces** (:mod:`repro.workloads.mmpp` +
  :mod:`repro.workloads.profiles`) — 2-phase MMPP processes fitted to the
  summary statistics of real storage repositories (Fujitsu VDI, Tencent
  CBS), giving bursty arrivals with controlled SCV and autocorrelation.

:mod:`repro.workloads.features` implements the paper's feature extractor
producing the workload-characteristics vector ``Ch`` used by the
throughput-prediction model (§III-B).
"""

from repro.workloads.request import IORequest, OpType
from repro.workloads.traces import Trace, merge_traces
from repro.workloads.micro import MicroWorkloadConfig, generate_micro_trace
from repro.workloads.mmpp import MMPP2, fit_mmpp2, generate_mmpp_trace
from repro.workloads.stats import (
    autocorrelation,
    scv,
    skewness,
    trace_summary,
)
from repro.workloads.features import (
    CH_FEATURE_NAMES,
    FEATURE_NAMES,
    WorkloadFeatures,
    extract_features,
)
from repro.workloads.profiles import (
    FUJITSU_VDI,
    TENCENT_CBS,
    TraceProfile,
    synthesize_from_profile,
)

__all__ = [
    "IORequest",
    "OpType",
    "Trace",
    "merge_traces",
    "MicroWorkloadConfig",
    "generate_micro_trace",
    "MMPP2",
    "fit_mmpp2",
    "generate_mmpp_trace",
    "scv",
    "skewness",
    "autocorrelation",
    "trace_summary",
    "WorkloadFeatures",
    "extract_features",
    "CH_FEATURE_NAMES",
    "FEATURE_NAMES",
    "TraceProfile",
    "FUJITSU_VDI",
    "TENCENT_CBS",
    "synthesize_from_profile",
]
