"""Trace statistics: SCV, skewness, autocorrelation, summaries.

These are the statistics the paper extracts from real repository traces
(§IV-A) before fitting an MMPP, and the ones the feature extractor
(§III-B) computes over prediction windows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.traces import Trace


def scv(samples: np.ndarray) -> float:
    """Squared coefficient of variation: Var(X) / E[X]^2.

    Returns 0.0 for fewer than two samples or a zero mean (a degenerate
    but harmless window), matching how the feature extractor treats
    near-empty prediction windows.
    """
    x = np.asarray(samples, dtype=np.float64)
    if x.size < 2:
        return 0.0
    mean = x.mean()
    if mean == 0.0:
        return 0.0
    return float(x.var() / mean**2)


def skewness(samples: np.ndarray) -> float:
    """Sample skewness E[(X-µ)^3] / σ^3 (0.0 when degenerate)."""
    x = np.asarray(samples, dtype=np.float64)
    if x.size < 3:
        return 0.0
    std = x.std()
    if std == 0.0:
        return 0.0
    return float(np.mean((x - x.mean()) ** 3) / std**3)


def autocorrelation(samples: np.ndarray, lag: int = 1) -> float:
    """Lag-``k`` sample autocorrelation (0.0 when degenerate)."""
    if lag <= 0:
        raise ValueError(f"lag must be positive, got {lag}")
    x = np.asarray(samples, dtype=np.float64)
    if x.size <= lag + 1:
        return 0.0
    var = x.var()
    if var == 0.0:
        return 0.0
    centered = x - x.mean()
    cov = np.mean(centered[:-lag] * centered[lag:])
    return float(cov / var)


@dataclass(frozen=True)
class SeriesSummary:
    """First moments plus burstiness descriptors of one sample series."""

    mean: float
    scv: float
    skewness: float
    autocorr_lag1: float

    @classmethod
    def of(cls, samples: np.ndarray) -> "SeriesSummary":
        x = np.asarray(samples, dtype=np.float64)
        mean = float(x.mean()) if x.size else 0.0
        return cls(
            mean=mean,
            scv=scv(x),
            skewness=skewness(x),
            autocorr_lag1=autocorrelation(x, 1),
        )


@dataclass(frozen=True)
class TraceSummary:
    """Per-direction inter-arrival and size summaries of a trace."""

    read_interarrival: SeriesSummary
    read_size: SeriesSummary
    write_interarrival: SeriesSummary
    write_size: SeriesSummary
    read_ratio: float
    n_requests: int


def trace_summary(trace: Trace) -> TraceSummary:
    """Compute the full per-direction statistical summary of ``trace``."""
    reads, writes = trace.reads(), trace.writes()
    return TraceSummary(
        read_interarrival=SeriesSummary.of(reads.interarrivals()),
        read_size=SeriesSummary.of(reads.sizes()),
        write_interarrival=SeriesSummary.of(writes.interarrivals()),
        write_size=SeriesSummary.of(writes.sizes()),
        read_ratio=trace.read_ratio(),
        n_requests=len(trace),
    )
