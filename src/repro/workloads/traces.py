"""Trace container: an ordered sequence of :class:`IORequest`.

A :class:`Trace` owns its requests sorted by arrival time and provides
filtering, windowing, persistence (a small CSV dialect; no third-party
formats so traces round-trip offline) and merging of per-stream traces
into one arrival-ordered stream.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.workloads.request import IORequest, OpType

_CSV_FIELDS = ("arrival_ns", "op", "lba", "size_bytes")


class Trace:
    """An arrival-ordered sequence of I/O requests."""

    def __init__(self, requests: Iterable[IORequest]) -> None:
        self.requests: list[IORequest] = sorted(requests, key=lambda r: (r.arrival_ns, r.req_id))

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[IORequest]:
        return iter(self.requests)

    def __getitem__(self, idx: int) -> IORequest:
        return self.requests[idx]

    # -- selections ------------------------------------------------------
    def reads(self) -> "Trace":
        return Trace(r for r in self.requests if r.is_read)

    def writes(self) -> "Trace":
        return Trace(r for r in self.requests if not r.is_read)

    def window(self, start_ns: int, end_ns: int) -> "Trace":
        """Requests with ``start_ns <= arrival < end_ns``."""
        if end_ns < start_ns:
            raise ValueError(f"window end {end_ns} before start {start_ns}")
        return Trace(r for r in self.requests if start_ns <= r.arrival_ns < end_ns)

    # -- bulk views --------------------------------------------------------
    def arrivals(self) -> np.ndarray:
        return np.array([r.arrival_ns for r in self.requests], dtype=np.int64)

    def sizes(self) -> np.ndarray:
        return np.array([r.size_bytes for r in self.requests], dtype=np.int64)

    def interarrivals(self) -> np.ndarray:
        """Differences of consecutive arrival times (empty for <2 requests)."""
        arr = self.arrivals()
        return np.diff(arr) if arr.size >= 2 else np.array([], dtype=np.int64)

    @property
    def duration_ns(self) -> int:
        """Span from first to last arrival (0 for <2 requests)."""
        if len(self.requests) < 2:
            return 0
        return self.requests[-1].arrival_ns - self.requests[0].arrival_ns

    def total_bytes(self) -> int:
        return int(self.sizes().sum()) if self.requests else 0

    def read_ratio(self) -> float:
        """Fraction of requests that are reads (0.0 for an empty trace)."""
        if not self.requests:
            return 0.0
        return sum(1 for r in self.requests if r.is_read) / len(self.requests)

    # -- persistence ------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trace as CSV with a header row."""
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(_CSV_FIELDS)
            for r in self.requests:
                writer.writerow((r.arrival_ns, r.op.name, r.lba, r.size_bytes))

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        requests = []
        with open(path, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header is None or tuple(header) != _CSV_FIELDS:
                raise ValueError(f"{path}: not a trace file (header {header!r})")
            for row in reader:
                requests.append(
                    IORequest(
                        arrival_ns=int(row[0]),
                        op=OpType[row[1]],
                        lba=int(row[2]),
                        size_bytes=int(row[3]),
                    )
                )
        return cls(requests)


def merge_traces(traces: Sequence[Trace]) -> Trace:
    """Merge several traces into one arrival-ordered trace."""
    merged: list[IORequest] = []
    for t in traces:
        merged.extend(t.requests)
    return Trace(merged)
