"""Two-phase MMPP fitting and generation (KPC-Toolbox substitute, §IV-A).

The paper regenerates real traces by fitting a two-phase Markov-
modulated Poisson process (a MAP(2)) to extracted statistics with the
KPC-Toolbox and replaying it.  This module implements the same pipeline:

* :class:`MMPP2` — the process itself, with exact inter-arrival moment
  and lag-1 autocorrelation formulas derived from its MAP
  representation ``(D0, D1)``;
* :func:`fit_mmpp2` — least-squares moment matching of
  ``(mean, SCV, lag-1 autocorrelation)`` in log-parameter space;
* :func:`generate_mmpp_trace` — CTMC simulation producing a bursty
  request trace, with request sizes drawn from a lognormal matched to a
  target mean/SCV.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from repro.sim.rng import make_rng
from repro.workloads.micro import DEFAULT_ADDRESS_SPACE_SECTORS
from repro.workloads.request import IORequest, OpType
from repro.workloads.traces import Trace


@dataclass(frozen=True)
class MMPP2:
    """A two-state Markov-modulated Poisson process.

    State ``i`` emits arrivals at Poisson rate ``lambdas[i]`` (events per
    ns) and switches to the other state at rate ``switch[i]``.
    """

    lambda1: float
    lambda2: float
    r12: float
    r21: float

    def __post_init__(self) -> None:
        for name in ("lambda1", "lambda2", "r12", "r21"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # -- MAP representation ------------------------------------------------
    @property
    def d0(self) -> np.ndarray:
        """Generator of phase transitions without arrivals."""
        return np.array(
            [
                [-(self.lambda1 + self.r12), self.r12],
                [self.r21, -(self.lambda2 + self.r21)],
            ]
        )

    @property
    def d1(self) -> np.ndarray:
        """Arrival-rate matrix (diagonal for an MMPP)."""
        return np.diag([self.lambda1, self.lambda2])

    @property
    def stationary_phase(self) -> np.ndarray:
        """Stationary distribution of the CTMC modulating chain."""
        total = self.r12 + self.r21
        return np.array([self.r21 / total, self.r12 / total])

    @property
    def mean_rate(self) -> float:
        """Long-run arrival rate (events per ns)."""
        pi = self.stationary_phase
        return float(pi[0] * self.lambda1 + pi[1] * self.lambda2)

    def _embedded(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(φ, (-D0)^{-1}, P): stationary arrival-phase vector, inverse, P."""
        inv = np.linalg.inv(-self.d0)
        p = inv @ self.d1
        # Stationary vector of P: solve φP = φ, φ1 = 1.
        eigvals, eigvecs = np.linalg.eig(p.T)
        idx = int(np.argmin(np.abs(eigvals - 1.0)))
        phi = np.real(eigvecs[:, idx])
        phi = phi / phi.sum()
        return phi, inv, p

    # -- inter-arrival statistics -------------------------------------------
    def interarrival_mean(self) -> float:
        phi, inv, _ = self._embedded()
        ones = np.ones(2)
        return float(phi @ inv @ ones)

    def interarrival_moment(self, k: int) -> float:
        """k-th raw moment of the stationary inter-arrival time."""
        if k < 1:
            raise ValueError(f"moment order must be >= 1, got {k}")
        phi, inv, _ = self._embedded()
        ones = np.ones(2)
        return float(math.factorial(k) * phi @ np.linalg.matrix_power(inv, k) @ ones)

    def interarrival_scv(self) -> float:
        m1 = self.interarrival_moment(1)
        m2 = self.interarrival_moment(2)
        return (m2 - m1**2) / m1**2

    def autocorrelation(self, lag: int = 1) -> float:
        """Lag-``k`` autocorrelation of consecutive inter-arrival times."""
        if lag < 1:
            raise ValueError(f"lag must be >= 1, got {lag}")
        phi, inv, p = self._embedded()
        ones = np.ones(2)
        m1 = float(phi @ inv @ ones)
        m2 = float(2.0 * phi @ inv @ inv @ ones)
        var = m2 - m1**2
        if var <= 0:
            return 0.0
        joint = float(phi @ inv @ np.linalg.matrix_power(p, lag) @ inv @ ones)
        return (joint - m1**2) / var

    # -- generation ----------------------------------------------------------
    def sample_interarrivals(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Simulate ``n`` inter-arrival times (ns, float) from the CTMC."""
        if n < 0:
            raise ValueError("n must be non-negative")
        lambdas = (self.lambda1, self.lambda2)
        switch = (self.r12, self.r21)
        # Start in the stationary phase of the modulating chain.
        state = 0 if rng.random() < self.stationary_phase[0] else 1
        out = np.empty(n)
        for i in range(n):
            t = 0.0
            while True:
                lam, sw = lambdas[state], switch[state]
                dwell = rng.exponential(1.0 / (lam + sw))
                t += dwell
                # The event ending the dwell is an arrival w.p. λ/(λ+r).
                if rng.random() < lam / (lam + sw):
                    break
                state = 1 - state
            out[i] = t
        return out


def _mmpp_from_logparams(x: np.ndarray) -> MMPP2:
    l1, l2, r12, r21 = np.exp(x)
    return MMPP2(lambda1=l1, lambda2=l2, r12=r12, r21=r21)


def fit_mmpp2(
    mean_interarrival_ns: float,
    scv: float,
    autocorr_lag1: float = 0.0,
    *,
    max_iter: int = 200,
) -> MMPP2:
    """Fit an MMPP(2) to (mean, SCV, lag-1 autocorrelation).

    SCV must exceed 1 for a genuinely bursty MMPP; values at or below 1
    are clamped to a near-Poisson process (SCV→1⁺), which is what the
    KPC-Toolbox does for non-bursty traces as well.  Feasible lag-1
    autocorrelation for an MMPP(2) is bounded by roughly
    ``(scv-1)/(2*scv)``; infeasible targets are clamped.
    """
    if mean_interarrival_ns <= 0:
        raise ValueError("mean inter-arrival must be positive")
    if scv < 0:
        raise ValueError("SCV must be non-negative")

    scv = max(scv, 1.0 + 1e-6)
    rho_max = (scv - 1.0) / (2.0 * scv)
    autocorr_lag1 = float(np.clip(autocorr_lag1, 0.0, 0.98 * rho_max))

    rate = 1.0 / mean_interarrival_ns
    # Initial guess: two rates straddling the mean, slow switching.
    x0 = np.log([rate * 2.0, rate * 0.4, rate / 50.0, rate / 50.0])
    target = np.array([np.log(mean_interarrival_ns), scv, autocorr_lag1])

    def residuals(x: np.ndarray) -> np.ndarray:
        try:
            m = _mmpp_from_logparams(x)
            return np.array(
                [
                    np.log(m.interarrival_mean()) - target[0],
                    m.interarrival_scv() - target[1],
                    # Autocorrelation is small in magnitude; weight it up so
                    # the optimizer does not ignore it next to the SCV term.
                    10.0 * (m.autocorrelation(1) - target[2]),
                ]
            )
        except (np.linalg.LinAlgError, ValueError, OverflowError):
            return np.array([1e3, 1e3, 1e3])

    result = least_squares(residuals, x0, max_nfev=max_iter * 4, xtol=1e-12, ftol=1e-12)
    return _mmpp_from_logparams(result.x)


def lognormal_params(mean: float, scv: float) -> tuple[float, float]:
    """(mu, sigma) of a lognormal with the given mean and SCV."""
    if mean <= 0:
        raise ValueError("mean must be positive")
    if scv < 0:
        raise ValueError("SCV must be non-negative")
    sigma2 = np.log(1.0 + max(scv, 1e-9))
    mu = np.log(mean) - sigma2 / 2.0
    return float(mu), float(np.sqrt(sigma2))


def generate_mmpp_trace(
    process: MMPP2,
    *,
    n_requests: int,
    op: OpType,
    mean_size_bytes: float,
    size_scv: float = 1.0,
    size_align_bytes: int = 4096,
    address_space_sectors: int = DEFAULT_ADDRESS_SPACE_SECTORS,
    seed: int | None = None,
    start_ns: int = 0,
) -> Trace:
    """Generate a single-direction trace with MMPP arrivals.

    Sizes are lognormal with the requested mean and SCV, aligned up to
    ``size_align_bytes``.
    """
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    rng = make_rng(seed)
    inter = process.sample_interarrivals(n_requests, rng)
    arrivals = start_ns + np.cumsum(inter).astype(np.int64)
    align = size_align_bytes
    # Compensate the ~align/2 mean inflation of ceil-alignment.
    target = max(align / 2.0, mean_size_bytes - align / 2.0)
    mu, sigma = lognormal_params(target, size_scv)
    raw = rng.lognormal(mu, sigma, size=n_requests)
    sizes = np.maximum(align, (np.ceil(raw / align) * align).astype(np.int64))
    requests = [
        IORequest(
            arrival_ns=int(t),
            op=op,
            lba=int(rng.integers(0, address_space_sectors)),
            size_bytes=int(s),
        )
        for t, s in zip(arrivals, sizes)
    ]
    return Trace(requests)


@dataclass(frozen=True)
class FluidTenantLoad:
    """Aggregate offered load of a population of MMPP-modelled tenants.

    The dual-fidelity engine does not replay individual MMPP arrivals
    for background tenants — it feeds each tenant's *long-run* offered
    rate into the fluid share solver as the flow's arrival-curve demand
    (``rho``).  This dataclass is that reduction: the per-tenant mean
    and peak byte rates implied by an :class:`MMPP2` plus a mean
    request size, scaled to ``n_tenants``.
    """

    n_tenants: int
    #: Long-run per-tenant demand: ``mean_rate * mean_request_bytes``.
    mean_bytes_per_ns: float
    #: Burst-phase ceiling: ``max(lambda1, lambda2) * mean_request_bytes``
    #: — what the tenant offers while its modulating chain sits in the
    #: high-rate state.  Useful for sizing envelope slack.
    peak_bytes_per_ns: float

    def __post_init__(self) -> None:
        if self.n_tenants <= 0:
            raise ValueError("n_tenants must be positive")
        if not 0.0 < self.mean_bytes_per_ns <= self.peak_bytes_per_ns:
            raise ValueError("need 0 < mean rate <= peak rate")

    @property
    def total_mean_bytes_per_ns(self) -> float:
        return self.n_tenants * self.mean_bytes_per_ns

    @property
    def burstiness(self) -> float:
        """Peak-to-mean ratio of a single tenant."""
        return self.peak_bytes_per_ns / self.mean_bytes_per_ns


def fluid_demand_bytes_per_ns(process: MMPP2, mean_request_bytes: float) -> float:
    """Long-run byte rate a tenant replaying ``process`` would offer."""
    if mean_request_bytes <= 0:
        raise ValueError("mean request size must be positive")
    mean_interarrival_ns = 1.0 / process.mean_rate
    return mean_request_bytes / mean_interarrival_ns


def aggregate_fluid_tenants(
    process: MMPP2, mean_request_bytes: float, n_tenants: int
) -> FluidTenantLoad:
    """Reduce ``n_tenants`` i.i.d. MMPP tenants to fluid demand terms."""
    burst_interarrival_ns = 1.0 / max(process.lambda1, process.lambda2)
    peak_bytes_per_ns = mean_request_bytes / burst_interarrival_ns
    return FluidTenantLoad(
        n_tenants=n_tenants,
        mean_bytes_per_ns=fluid_demand_bytes_per_ns(process, mean_request_bytes),
        peak_bytes_per_ns=peak_bytes_per_ns,
    )
