"""Micro-trace generation (§IV-A).

Micro traces draw inter-arrival times and request sizes from exponential
distributions.  Read and write requests are generated as two independent
streams with their own mean inter-arrival time and mean size — matching
the paper's Fig. 5 sweeps, where "read and write requests have the same
characteristics" is just the special case of equal parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import make_rng
from repro.workloads.request import IORequest, OpType
from repro.workloads.traces import Trace, merge_traces

#: Addresses are drawn from this many 512-byte sectors (a 4 GiB working
#: set).  Large enough that accidental LBA overlap (which triggers the
#: SSQ consistency path) stays rare, small enough that a Table II-sized
#: CMT reaches a warm hit ratio — the regime real deployments run in.
DEFAULT_ADDRESS_SPACE_SECTORS = 4 * 1024 * 1024 * 2


@dataclass(frozen=True)
class MicroWorkloadConfig:
    """Parameters of one exponential request stream.

    Attributes
    ----------
    mean_interarrival_ns:
        Mean of the exponential inter-arrival distribution.
    mean_size_bytes:
        Mean of the exponential request-size distribution.  Sizes are
        rounded up to ``size_align_bytes`` and floored at one unit.
    size_align_bytes:
        Alignment granularity (default 4 KiB, a typical block size).
    address_space_sectors:
        Size of the LBA space addresses are drawn from.
    sequential_fraction:
        Probability that a request continues at the previous request's
        end address instead of seeking to a random one.
    """

    mean_interarrival_ns: float
    mean_size_bytes: float
    size_align_bytes: int = 4096
    address_space_sectors: int = DEFAULT_ADDRESS_SPACE_SECTORS
    sequential_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_interarrival_ns <= 0:
            raise ValueError("mean inter-arrival must be positive")
        if self.mean_size_bytes <= 0:
            raise ValueError("mean size must be positive")
        if self.size_align_bytes <= 0:
            raise ValueError("size alignment must be positive")
        if not 0.0 <= self.sequential_fraction <= 1.0:
            raise ValueError("sequential fraction must be in [0, 1]")

    @property
    def arrival_flow_speed(self) -> float:
        """Offered load in bytes/ns — the paper's "arrival flow speed"."""
        return self.mean_size_bytes / self.mean_interarrival_ns


def _generate_stream(
    config: MicroWorkloadConfig,
    op: OpType,
    n_requests: int,
    rng: np.random.Generator,
    start_ns: int,
) -> Trace:
    interarrivals = rng.exponential(config.mean_interarrival_ns, size=n_requests)
    arrivals = start_ns + np.cumsum(interarrivals).astype(np.int64)
    align = config.size_align_bytes
    # Ceil-alignment inflates the mean by ~align/2; pre-shift the sampled
    # mean so the aligned sizes land on the configured mean.
    target = max(align / 2.0, config.mean_size_bytes - align / 2.0)
    raw_sizes = rng.exponential(target, size=n_requests)
    sizes = np.maximum(align, (np.ceil(raw_sizes / align) * align).astype(np.int64))

    requests: list[IORequest] = []
    prev_end = 0
    for t, size in zip(arrivals, sizes):
        if requests and rng.random() < config.sequential_fraction:
            lba = prev_end
        else:
            lba = int(rng.integers(0, config.address_space_sectors))
        req = IORequest(arrival_ns=int(t), op=op, lba=lba, size_bytes=int(size))
        prev_end = req.lba_end
        requests.append(req)
    return Trace(requests)


def generate_micro_trace(
    read_config: MicroWorkloadConfig,
    write_config: MicroWorkloadConfig | None = None,
    *,
    n_reads: int = 1000,
    n_writes: int = 1000,
    seed: int | None = None,
    start_ns: int = 0,
) -> Trace:
    """Generate a merged read+write micro trace.

    ``write_config=None`` reuses ``read_config`` for writes (the Fig. 5
    setting where both streams share characteristics).
    """
    if n_reads < 0 or n_writes < 0:
        raise ValueError("request counts must be non-negative")
    rng = make_rng(seed)
    write_config = write_config or read_config
    parts = []
    if n_reads:
        parts.append(_generate_stream(read_config, OpType.READ, n_reads, rng, start_ns))
    if n_writes:
        parts.append(_generate_stream(write_config, OpType.WRITE, n_writes, rng, start_ns))
    return merge_traces(parts) if parts else Trace([])
