"""Workload feature extraction — the ``Ch`` vector of §III-B.

The paper's throughput-prediction model takes as input the workload
characteristics observed in a prediction window:

1. the ratio of read requests to write requests,
2. the SCV of request size and inter-arrival time, separately for reads
   and writes,
3. the arrival flow speed (bytes per time unit) for reads and writes,

plus the mean size / inter-arrival per direction, which the Fig. 5
sweeps vary directly.  :func:`extract_features` turns a trace (or a
window of one) into a fixed-order numeric vector; the order is frozen in
:data:`CH_FEATURE_NAMES` so models and importances line up.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.stats import scv
from repro.workloads.traces import Trace

#: Feature order of the workload-characteristics vector ``Ch``.
CH_FEATURE_NAMES: tuple[str, ...] = (
    "read_write_ratio",
    "read_mean_interarrival_ns",
    "write_mean_interarrival_ns",
    "read_mean_size_bytes",
    "write_mean_size_bytes",
    "read_interarrival_scv",
    "write_interarrival_scv",
    "read_size_scv",
    "write_size_scv",
    "read_flow_speed",
    "write_flow_speed",
)

#: Full model-input order: Ch followed by the SSQ weight ratio ``w``.
FEATURE_NAMES: tuple[str, ...] = CH_FEATURE_NAMES + ("weight_ratio",)


@dataclass(frozen=True)
class WorkloadFeatures:
    """The extracted ``Ch`` vector with named accessors."""

    read_write_ratio: float
    read_mean_interarrival_ns: float
    write_mean_interarrival_ns: float
    read_mean_size_bytes: float
    write_mean_size_bytes: float
    read_interarrival_scv: float
    write_interarrival_scv: float
    read_size_scv: float
    write_size_scv: float
    read_flow_speed: float
    write_flow_speed: float

    def to_array(self) -> np.ndarray:
        """The Ch vector in :data:`CH_FEATURE_NAMES` order."""
        return np.array([getattr(self, name) for name in CH_FEATURE_NAMES])

    def with_weight(self, weight_ratio: float) -> np.ndarray:
        """Model input row: Ch followed by the SSQ weight ratio."""
        if weight_ratio < 1:
            raise ValueError(f"weight ratio must be >= 1, got {weight_ratio}")
        return np.append(self.to_array(), float(weight_ratio))

    def per_device(self, n_devices: int) -> "WorkloadFeatures":
        """The workload one device of an ``n_devices`` array sees.

        A target round-robins requests over its flash array, thinning
        each stream ``n``-fold: inter-arrivals stretch by ``n``, flow
        speeds shrink by ``n``; sizes, SCVs and the read/write ratio are
        (approximately) preserved by uniform thinning.
        """
        if n_devices < 1:
            raise ValueError(f"n_devices must be >= 1, got {n_devices}")
        if n_devices == 1:
            return self
        from dataclasses import replace

        return replace(
            self,
            read_mean_interarrival_ns=self.read_mean_interarrival_ns * n_devices,
            write_mean_interarrival_ns=self.write_mean_interarrival_ns * n_devices,
            read_flow_speed=self.read_flow_speed / n_devices,
            write_flow_speed=self.write_flow_speed / n_devices,
        )


def _direction_stats(sub: Trace, window_ns: int | None) -> tuple[float, float, float, float, float]:
    """(mean inter-arrival, mean size, inter SCV, size SCV, flow speed)."""
    n = len(sub)
    sizes = sub.sizes()
    inter = sub.interarrivals()
    mean_size = float(sizes.mean()) if n else 0.0
    mean_inter = float(inter.mean()) if inter.size else 0.0
    span = window_ns if window_ns is not None else sub.duration_ns
    if span and span > 0:
        flow_speed = float(sizes.sum()) / span
    elif mean_inter > 0:
        flow_speed = mean_size / mean_inter
    else:
        flow_speed = 0.0
    return mean_inter, mean_size, scv(inter), scv(sizes), flow_speed


def extract_features(trace: Trace, *, window_ns: int | None = None) -> WorkloadFeatures:
    """Extract the ``Ch`` vector from a trace or prediction window.

    Parameters
    ----------
    trace:
        The requests observed in the window.
    window_ns:
        Length of the observation window.  When given, flow speeds are
        normalised by it (total bytes / window); otherwise the trace's
        own arrival span is used.
    """
    if window_ns is not None and window_ns <= 0:
        raise ValueError(f"window must be positive, got {window_ns}")
    reads, writes = trace.reads(), trace.writes()
    n_writes = len(writes)
    ratio = len(reads) / n_writes if n_writes else float(len(reads))
    r = _direction_stats(reads, window_ns)
    w = _direction_stats(writes, window_ns)
    return WorkloadFeatures(
        read_write_ratio=ratio,
        read_mean_interarrival_ns=r[0],
        write_mean_interarrival_ns=w[0],
        read_mean_size_bytes=r[1],
        write_mean_size_bytes=w[1],
        read_interarrival_scv=r[2],
        write_interarrival_scv=w[2],
        read_size_scv=r[3],
        write_size_scv=w[3],
        read_flow_speed=r[4],
        write_flow_speed=w[4],
    )
