"""repro — SRC: storage-side rate control for NVMe-oF disaggregated storage.

A from-scratch Python reproduction of *"SRC: Mitigate I/O Throughput
Degradation in Network Congestion Control of Disaggregated Storage
Systems"* (Jia et al., IPDPS 2023), including every substrate the paper
builds on:

* :mod:`repro.sim` — shared discrete-event engine;
* :mod:`repro.ssd` — MQSim-style multi-queue SSD simulator (Table II);
* :mod:`repro.nvme` — NVMe driver layer: default FIFO SQs and the
  paper's separate submission queues with token WRR (§III-A);
* :mod:`repro.net` — packet-level RDMA fabric with DCQCN, ECN, PFC,
  and a Clos topology builder (NS3-RDMA substitute);
* :mod:`repro.fabric` — NVMe-oF initiators/targets over the network;
* :mod:`repro.workloads` — micro and MMPP-synthetic trace generation,
  statistics, and the Ch feature extractor;
* :mod:`repro.ml` — from-scratch regressors (Table I) + evaluation;
* :mod:`repro.core` — SRC itself: the throughput prediction model,
  workload monitor, and Algorithm 1 dynamic weight adjustment;
* :mod:`repro.experiments` — harnesses regenerating every table and
  figure of the evaluation (see EXPERIMENTS.md).

Quickstart::

    from repro.ssd import SSD_A
    from repro.nvme import SSQDriver
    from repro.workloads import MicroWorkloadConfig, generate_micro_trace
    from repro.experiments import replay_on_device

    trace = generate_micro_trace(
        MicroWorkloadConfig(10_000, 40 * 1024), n_reads=2000, n_writes=2000, seed=1
    )
    result = replay_on_device(trace, SSD_A, SSQDriver(read_weight=1, write_weight=4))
    print(result.read_tput_gbps, result.write_tput_gbps)
"""

__version__ = "1.0.0"
